#include "flashadc/comparator_sim.hpp"

#include <cmath>

#include "flashadc/tech.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace dot::flashadc {

using spice::MosType;
using spice::Netlist;
using spice::PulseParams;
using spice::SourceSpec;

namespace {

/// Inverted pre-drive pulse for a clock phase that must be HIGH during
/// [start, end) of every cycle (the driver inverter flips it).
SourceSpec predrive(double start, double end) {
  PulseParams p;
  p.initial = kVddd;  // pre high -> clock low
  p.pulsed = 0.0;     // pre low  -> clock high
  p.delay = start;
  p.rise = kClockEdge;
  p.fall = kClockEdge;
  p.width = (end - start) - kClockEdge;
  p.period = kCyclePeriod;
  return SourceSpec::pulse(p);
}

}  // namespace

Netlist instantiate_comparator_bench(const Netlist& macro, double delta_v) {
  Netlist n = macro;
  const auto nm = nmos_model();
  const auto pm = pmos_model();
  const double L = 1e-6;
  const double vref_tap = (kVrefLo + kVrefHi) / 2.0;

  // Supplies.
  n.add_vsource("VDDA", "vdda", "0", SourceSpec::dc(kVdda));
  n.add_vsource("VDDD", "vddd", "0", SourceSpec::dc(kVddd));

  // Analog input: externally driven chip pin, low impedance.
  n.add_vsource("VIN", "vin", "0", SourceSpec::dc(vref_tap + delta_v));

  // Reference: ladder tap through its Thevenin resistance.
  n.add_vsource("VREF", "vref_src", "0", SourceSpec::dc(vref_tap));
  n.add_resistor("RREF", "vref_src", "vref", 40.0);

  // Bias lines from the bias generator (diode output impedance).
  n.add_vsource("VBN_SRC", "vbn_src", "0", SourceSpec::dc(kVbn));
  n.add_resistor("RVBN", "vbn_src", "vbn", kBiasOutputOhms);
  n.add_vsource("VBC_SRC", "vbc_src", "0", SourceSpec::dc(kVbc));
  n.add_resistor("RVBC", "vbc_src", "vbc", kBiasOutputOhms);

  // Clock drivers: the clock generator's final buffer inverters, powered
  // by the digital supply, plus the distribution-line resistance.
  struct Phase {
    const char* name;
    double start, end;
  };
  const Phase phases[] = {{"clk1", kSampleStart, kSampleEnd},
                          {"clk2", kAmpStart, kAmpEnd},
                          {"clk3", kLatchStart, kLatchEnd}};
  int k = 0;
  for (const auto& ph : phases) {
    ++k;
    const std::string pre = std::string("pre") + ph.name;
    const std::string drv = std::string("drv") + ph.name;
    n.add_vsource("VPRE" + std::to_string(k), pre, "0",
                  predrive(ph.start, ph.end));
    n.add_mosfet("MBP" + std::to_string(k), MosType::kPmos, drv, pre, "vddd",
                 "vddd", 40e-6, L, pm);
    n.add_mosfet("MBN" + std::to_string(k), MosType::kNmos, drv, pre, "0",
                 "0", 20e-6, L, nm);
    n.add_resistor("RCLK" + std::to_string(k), drv, ph.name,
                   kClockBufferOhms);
  }
  return n;
}

spice::TranOptions comparator_tran_options() {
  spice::TranOptions opt;
  opt.t_stop = 2.0 * kCyclePeriod;
  opt.dt = 0.5e-9;
  opt.dt_min = 1e-13;
  opt.newton.max_iterations = 120;
  return opt;
}

ComparatorRun extract_comparator_run(const spice::TranResult& result) {
  ComparatorRun run;
  auto delivered = [&](double t, const std::string& src) {
    return -result.current_at(t, src);
  };
  const double t_meas[3] = {kMeasSample, kMeasAmp, kMeasLatch};
  for (int p = 0; p < 3; ++p) {
    const double t = t_meas[p];
    run.ivdd[static_cast<std::size_t>(p)] = delivered(t, "VDDA") +
                                            delivered(t, "VBN_SRC") +
                                            delivered(t, "VBC_SRC");
    run.iddq[static_cast<std::size_t>(p)] = delivered(t, "VDDD");
    run.iin[static_cast<std::size_t>(p)] = delivered(t, "VIN");
    run.iref[static_cast<std::size_t>(p)] = delivered(t, "VREF");
  }
  // Clock levels: each phase's pin voltage when it should be high and at
  // a phase where it should be low.
  run.clock_levels = {
      result.voltage_at(kMeasSample, "clk1"),  // clk1 hi
      result.voltage_at(kMeasAmp, "clk1"),     // clk1 lo
      result.voltage_at(kMeasAmp, "clk2"),     // clk2 hi
      result.voltage_at(kMeasSample, "clk2"),  // clk2 lo
      result.voltage_at(kMeasLatch, "clk3"),   // clk3 hi
      result.voltage_at(kMeasSample, "clk3"),  // clk3 lo
  };
  // Decision: the flipflop output pair -- what the decoder column
  // actually sees -- read during the quiet amplification phase of the
  // second cycle, after the flipflop captured and held the cycle-1
  // decision. q high means "vin > vref". A flipflop that fails to
  // produce complementary logic levels yields decision 0 (invalid).
  const double t_read = kCyclePeriod + (kAmpStart + kAmpEnd) / 2.0;
  const double q = result.voltage_at(t_read, "q");
  const double qb = result.voltage_at(t_read, "qb");
  if (q - qb > 3.0)
    run.decision = 1;
  else if (qb - q > 3.0)
    run.decision = -1;
  else
    run.decision = 0;
  run.converged = true;
  return run;
}

ComparatorRun run_comparator(const Netlist& full_bench) {
  return extract_comparator_run(
      spice::transient(full_bench, comparator_tran_options()));
}

ComparatorRun simulate_comparator(const Netlist& macro, double delta_v) {
  const Netlist bench = instantiate_comparator_bench(macro, delta_v);
  try {
    return run_comparator(bench);
  } catch (const util::ConvergenceError&) {
    ComparatorRun failed;
    failed.converged = false;
    return failed;
  }
}

std::array<ComparatorRun, 4> simulate_comparator_grid(const Netlist& macro) {
  std::array<ComparatorRun, 4> runs;
  for (std::size_t i = 0; i < kDecisionGrid.size(); ++i)
    runs[i] = simulate_comparator(macro, kDecisionGrid[i]);
  return runs;
}

macro::MeasurementLayout comparator_measurement_layout() {
  macro::MeasurementLayout layout;
  const char* pols[] = {"lo", "hi"};
  const char* phases[] = {"sample", "amp", "latch"};
  for (const char* pol : pols) {
    for (const char* phase : phases) {
      const std::string suffix = std::string("_") + phase + "_" + pol;
      layout.add("ivdd" + suffix, macro::MeasurementKind::kIVdd);
      layout.add("iddq" + suffix, macro::MeasurementKind::kIddq);
      layout.add("iin" + suffix, macro::MeasurementKind::kIinput);
      layout.add("iref" + suffix, macro::MeasurementKind::kIinput);
    }
  }
  return layout;
}

std::vector<double> comparator_measurements(const ComparatorRun& lo,
                                            const ComparatorRun& hi) {
  std::vector<double> values;
  values.reserve(24);
  for (const ComparatorRun* run : {&lo, &hi}) {
    for (int p = 0; p < 3; ++p) {
      const auto i = static_cast<std::size_t>(p);
      values.push_back(run->ivdd[i]);
      values.push_back(run->iddq[i]);
      values.push_back(run->iin[i]);
      values.push_back(run->iref[i]);
    }
  }
  return values;
}

macro::VoltageSignature classify_comparator(
    const std::array<ComparatorRun, 4>& faulty,
    const std::array<ComparatorRun, 4>& nominal,
    double clock_level_tolerance) {
  using macro::VoltageSignature;

  // A non-converging faulty circuit is grossly broken: stuck output.
  for (const auto& run : faulty)
    if (!run.converged) return VoltageSignature::kOutputStuckAt;

  int faulty_d[4], nominal_d[4];
  for (int i = 0; i < 4; ++i) {
    faulty_d[i] = faulty[static_cast<std::size_t>(i)].decision;
    nominal_d[i] = nominal[static_cast<std::size_t>(i)].decision;
  }

  bool decisions_ok = true;
  for (int i = 0; i < 4; ++i)
    decisions_ok = decisions_ok && faulty_d[i] == nominal_d[i];

  if (!decisions_ok) {
    // Invalid flipflop levels: the decoder sees garbage. A mostly-dead
    // flipflop reads as stuck; occasional invalid levels as mixed.
    int zeros = 0;
    for (int d : faulty_d) zeros += d == 0;
    if (zeros >= 3) return VoltageSignature::kOutputStuckAt;
    if (zeros > 0) return VoltageSignature::kMixed;
    // All-same decisions: stuck at one side.
    if (faulty_d[0] == faulty_d[1] && faulty_d[1] == faulty_d[2] &&
        faulty_d[2] == faulty_d[3])
      return VoltageSignature::kOutputStuckAt;
    // Monotonic but shifted threshold beyond the 8 mV boundary: offset.
    bool monotonic = true;
    for (int i = 0; i + 1 < 4; ++i)
      monotonic = monotonic && faulty_d[i] <= faulty_d[i + 1];
    if (monotonic) return VoltageSignature::kOffset;
    return VoltageSignature::kMixed;
  }

  // Function intact: does a clock line level deviate? (Typical for
  // high-ohmic faults on the clock distribution lines.)
  for (std::size_t i = 0; i < 6; ++i) {
    double worst = 0.0;
    for (std::size_t g = 0; g < 4; ++g)
      worst = std::max(worst, std::fabs(faulty[g].clock_levels[i] -
                                        nominal[g].clock_levels[i]));
    if (worst > clock_level_tolerance) return VoltageSignature::kClockValue;
  }
  return VoltageSignature::kNoDeviation;
}

}  // namespace dot::flashadc
