// The full comparator bank as ONE flat netlist + merged layout: the
// circuit the paper's divide-and-conquer step decomposes into 256
// per-comparator macro campaigns. The sparse MNA solver removed the
// ~50-node simulation ceiling that forced that decomposition, so the
// bank can now be simulated whole and the decomposition's blind spots
// -- shared-node defects, bias-line bridges crossing slice boundaries,
// adjacent-tap reference shorts -- measured instead of assumed away.
//
// Structure: N comparator slices (2..64, N | 256) stacked as a column.
//  - Slice-local nets/devices carry an "s<k>_" / "S<k>_" prefix.
//  - Clock phases, bias lines, supplies and the analog input are shared
//    distribution trunks spanning the whole column, routed with the
//    same adjacency the single-comparator cell uses (vbn next to vbc in
//    the nominal design), so neighbouring-line shorts on them bridge
//    every slice at once.
//  - A reference tap string ("shared ladder taps") runs through the
//    column: slice k's reference pin is tap net ref<k>, one fine-ladder
//    resistor (kFineOhms) between consecutive taps. Adjacent-tap shorts
//    are genuine inter-slice faults no per-comparator campaign can see.
//  - Per-slice output pins s<k>_q / s<k>_qb leave the cell edge (the
//    decoder column lines).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flashadc/comparator.hpp"
#include "flashadc/comparator_sim.hpp"
#include "layout/cell.hpp"
#include "macro/equivalence.hpp"
#include "macro/macro_cell.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace dot::flashadc {

struct BankOptions {
  /// Comparators in the column. Must divide kLevels (256) and lie in
  /// 2..256; build_bank_netlist throws util::InvalidInputError
  /// otherwise. (The historical 64 cap fell with the Schur solver: the
  /// paper-scale 256-slice column is the chip macro's backbone.)
  int size = 64;
  ComparatorDft dft;
  /// Linear-solver selection for every bank transient (run_bank_bench
  /// and everything layered on it). kSchur engages the block-arrowhead
  /// path with the slice partition derived from the bench netlist.
  spice::SolverOptions solver;
};

/// "s<k>_" -- prefix of slice k's local net names.
std::string bank_slice_net_prefix(int slice);
/// "S<k>_" -- prefix of slice k's device names.
std::string bank_slice_device_prefix(int slice);
/// Reference tap net of slice k ("ref<k>").
std::string bank_tap_net(int slice);
/// Input-trunk net at slice k ("in<k>"): the analog input's wire
/// segment beside slice k, mirroring the tap string's per-slice RC.
std::string bank_input_net(int slice);
/// Nominal reference voltage of slice k's tap: one LSB per tap,
/// centered mid-scale (the window of the ladder the column spans).
double bank_tap_voltage(const BankOptions& options, int slice);

/// Flat netlist of the whole column. Node names double as layout net
/// names. Pins: vin, vrefp, vrefm, clk1..clk3, vbn, vbc, vdda, 0 plus
/// every slice's q/qb.
spice::Netlist build_bank_netlist(const BankOptions& options);

/// Merged layout: shared trunks span the column, slice devices follow
/// in slice order, so neighbouring slices' nets meet in the routing
/// channel (realistic adjacency for inter-slice bridge defects).
layout::CellLayout build_bank_layout(const BankOptions& options);

std::vector<std::string> bank_pins(const BankOptions& options);

/// First-class macro cell: the existing defect-sprinkle -> collapse ->
/// simulate -> signature pipeline runs on it unchanged. The ADC holds
/// kLevels / size instances of the column.
macro::MacroCell build_bank_macro(const BankOptions& options);

// ---------------------------------------------------------------------
// Decomposition mapping.

/// Slice mapper for the bank namespace, for projecting bank-level fault
/// classes onto the per-comparator macro (macro::project_fault):
///  - "s<k>_x" -> (k, "x"); "S<k>_D" -> (k, "D");
///  - "ref<k>" -> (k, "vref") / reference-string resistor "RREF<k>" ->
///    (k, "") -- tap hardware belongs to slice k but has no device
///    counterpart inside the comparator cell, so faults needing it stay
///    unmappable (the decomposition models the ladder separately);
///  - shared nets (clk*, vbn, vbc, vin, vdda, 0) -> slice -1, same name.
macro::SliceMapper bank_slice_mapper(const BankOptions& options);

/// Slice whose signature a bank fault class is observed at: the lowest
/// slice the fault touches, or the middle slice for fully-shared
/// classes (its tap sits at mid-scale, like the per-comparator bench).
int bank_observed_slice(const BankOptions& options,
                        const fault::CircuitFault& fault);

// ---------------------------------------------------------------------
// Flat-bank fault simulation (the per-comparator bench, generalized).

/// Wraps a (possibly faulty) bank macro netlist with the same realistic
/// drivers as the single-comparator bench -- shared clock buffers and
/// bias Thevenins now loaded by all N slices -- and drives vin at slice
/// `slice`'s nominal tap + delta_v.
spice::Netlist instantiate_bank_bench(const spice::Netlist& macro_netlist,
                                      const BankOptions& options, int slice,
                                      double delta_v);

/// Transient settings of the bank bench (no t=0 operating point: with
/// every clock low the sampled nodes float behind subthreshold leakage
/// and the column-sized DC solve fails for many faulted variants, so
/// the run integrates from the zero state). Shared by the scalar path
/// and the batched campaign prepass.
spice::TranOptions bank_tran_options();

/// Extracts the run record from a finished bank transient: decisions
/// from slice `slice`'s flipflop, currents from the shared supplies
/// (converged=true).
ComparatorRun extract_bank_run(const spice::TranResult& result,
                               const BankOptions& options, int slice);

/// Two-cycle transient on an already-instantiated bench; decisions read
/// from slice `slice`'s flipflop, currents from the shared supplies/pins
/// (whole-column measurements). Field-compatible with the
/// single-comparator run record, so the existing classification and
/// envelope machinery applies verbatim. Convergence failures throw
/// (callers decide the policy, like run_comparator).
ComparatorRun run_bank_bench(const spice::Netlist& full_bench,
                             const BankOptions& options, int slice);

/// Bench + run for a macro netlist at one input level; a convergence
/// failure returns converged = false instead of throwing.
ComparatorRun simulate_bank_slice(const spice::Netlist& macro_netlist,
                                  const BankOptions& options, int slice,
                                  double delta_v);

/// All four decision-grid points for one observed slice.
std::array<ComparatorRun, 4> simulate_bank_grid(
    const spice::Netlist& macro_netlist, const BankOptions& options,
    int slice);

}  // namespace dot::flashadc
