#include "flashadc/biasgen.hpp"

#include "flashadc/tech.hpp"
#include "layout/synth.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"

namespace dot::flashadc {

using spice::MosType;
using spice::Netlist;
using spice::SourceSpec;

Netlist build_biasgen_netlist() {
  Netlist n;
  const auto nm = nmos_model();
  const auto pm = pmos_model();
  const double L2 = 2e-6;

  // Reference branch: the resistor to ground sets the master current
  // through the diode-connected PMOS, I = v(pb) / RB1.
  n.add_mosfet("MPM", MosType::kPmos, "pb", "pb", "vdda", "vdda", 8e-6, L2,
               pm);
  n.add_resistor("RB1", "pb", "0", 60e3);

  // Branch 1: mirrored current into a diode-connected NMOS -> vbn.
  n.add_mosfet("MP5", MosType::kPmos, "vbn", "pb", "vdda", "vdda", 8e-6, L2,
               pm);
  n.add_mosfet("MD1", MosType::kNmos, "vbn", "vbn", "0", "0", 12e-6, L2, nm);

  // Branch 2: larger mirrored current into a smaller diode -> slightly
  // higher cascode bias vbc.
  n.add_mosfet("MP6", MosType::kPmos, "vbc", "pb", "vdda", "vdda", 12e-6, L2,
               pm);
  n.add_mosfet("MD2", MosType::kNmos, "vbc", "vbc", "0", "0", 10e-6, L2, nm);

  // Decoupling capacitors on the bias lines.
  n.add_capacitor("CB1", "vbn", "0", 2e-12);
  n.add_capacitor("CB2", "vbc", "0", 2e-12);
  return n;
}

std::vector<std::string> biasgen_pins() { return {"vbn", "vbc", "vdda", "0"}; }

layout::CellLayout build_biasgen_layout() {
  layout::SynthOptions opt;
  opt.vdd_net = "vdda";
  opt.pins = biasgen_pins();
  return layout::synthesize_layout(build_biasgen_netlist(), "biasgen", opt);
}

macro::MacroCell build_biasgen_macro() {
  return macro::MacroCell("biasgen", build_biasgen_netlist(),
                          build_biasgen_layout(), biasgen_pins(), 1);
}

namespace {

Netlist driven_biasgen(const Netlist& macro_netlist) {
  Netlist n = macro_netlist;
  n.add_vsource("VDDA", "vdda", "0", SourceSpec::dc(kVdda));
  // Comparator-array load: 256 tail gates draw no DC current, but the
  // distribution lines have leakage-scale loading.
  n.add_resistor("RLOAD1", "vbn", "0", 5e6);
  n.add_resistor("RLOAD2", "vbc", "0", 5e6);
  return n;
}

}  // namespace

BiasgenContext make_biasgen_context(const Netlist& macro_netlist,
                                    const spice::SolverOptions& solver) {
  const Netlist n = driven_biasgen(macro_netlist);
  BiasgenContext ctx;
  ctx.node_count = n.node_count();
  ctx.map = spice::MnaMap(n);
  ctx.solver.options = solver;
  spice::SolverContext solve_ctx(solver);
  ctx.golden = dc_operating_point(n, ctx.map, {}, nullptr, &solve_ctx).x;
  ctx.solver.symbolic = solve_ctx.shared_symbolic();
  return ctx;
}

BiasgenSolution solve_biasgen(const Netlist& macro_netlist,
                              const BiasgenContext* context) {
  const Netlist n = driven_biasgen(macro_netlist);
  const bool reuse = context && n.node_count() == context->node_count;
  const spice::MnaMap local_map = reuse ? spice::MnaMap() : spice::MnaMap(n);
  const spice::MnaMap& map = reuse ? context->map : local_map;
  const std::vector<double>* warm = reuse ? &context->golden : nullptr;
  spice::SolverContext solver(context ? context->solver
                                      : spice::SolverSeed{});

  BiasgenSolution out;
  try {
    const auto result = dc_operating_point(n, map, {}, warm, &solver);
    out.vbn = map.voltage(result.x, *n.find_node("vbn"));
    out.vbc = map.voltage(result.x, *n.find_node("vbc"));
    out.ivdd = -map.branch_current(result.x, "VDDA");
    out.converged = true;
  } catch (const util::ConvergenceError&) {
    out.converged = false;
  }
  return out;
}

}  // namespace dot::flashadc
