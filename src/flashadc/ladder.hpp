// The dual-ladder reference string (paper ref [11]): a 16-segment coarse
// ladder carrying the main reference current, with a 16-resistor fine
// ladder bridging every coarse segment. The 256 comparator reference
// taps sit on the fine ladders.
#pragma once

#include <vector>

#include "layout/cell.hpp"
#include "macro/macro_cell.hpp"
#include "spice/mna.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace dot::flashadc {

inline constexpr int kCoarseSegments = 16;
inline constexpr int kFinePerSegment = 16;
inline constexpr double kCoarseOhms = 12.0;
inline constexpr double kFineOhms = 60.0;

/// Tap net name for comparator index i (0..255): the reference voltage
/// of comparator i.
std::string ladder_tap_net(int index);

/// Physical netlist. Pins: vrefp, vrefm (the chip reference terminals).
spice::Netlist build_ladder_netlist();

layout::CellLayout build_ladder_layout();

std::vector<std::string> ladder_pins();

macro::MacroCell build_ladder_macro();

/// DC-solves a (possibly faulty) ladder netlist with the references
/// driven, returning the 256 tap voltages and the two pin currents
/// (delivered by VREFP / VREFM).
struct LadderSolution {
  std::vector<double> taps;  // size 256
  double iref_p = 0.0;
  double iref_m = 0.0;
  bool converged = false;
};

/// Fault-free solver state computed once per campaign and shared
/// (read-only) by all workers: the golden MNA index map and operating
/// point. Faulty netlists that keep the node layout (bridge-style
/// faults, the vast majority) reuse the map and warm-start Newton from
/// the golden solution instead of walking the continuation ladder.
struct LadderContext {
  std::size_t node_count = 0;  ///< node count of the driven golden bench
  spice::MnaMap map;
  std::vector<double> golden;
  /// Solver options plus the golden sparse symbolic analysis; faulty
  /// solves that keep the matrix pattern refactor against it instead of
  /// re-running the analysis.
  spice::SolverSeed solver;
};
LadderContext make_ladder_context(const spice::Netlist& macro_netlist,
                                  const spice::SolverOptions& solver = {});

LadderSolution solve_ladder(const spice::Netlist& macro_netlist,
                            const LadderContext* context = nullptr);

}  // namespace dot::flashadc
