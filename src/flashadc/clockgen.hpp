// Clock generator macro: a digital cell deriving the three comparator
// phases from the chip clock input through inverter delay chains and
// gating, ending in large output buffers. Its quiescent supply current
// (IDDQ) is (nearly) zero in a fault-free circuit -- which is exactly
// why so many faults are IDDQ-detectable (paper: 93.8% of clock
// generator faults, and 11% of ALL faults raise only this current).
#pragma once

#include <vector>

#include "layout/cell.hpp"
#include "macro/macro_cell.hpp"
#include "spice/mna.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace dot::flashadc {

/// Pins: clk (chip clock input), clk1, clk2, clk3 (phase outputs),
/// vddd, 0.
spice::Netlist build_clockgen_netlist();
layout::CellLayout build_clockgen_layout();
std::vector<std::string> clockgen_pins();
macro::MacroCell build_clockgen_macro();

/// DC evaluation at both clock input levels (the quiescent states a
/// tester holds the chip in).
struct ClockgenSolution {
  /// Phase output voltages for clk = 0 and clk = VDDD.
  double out_low[3] = {0, 0, 0};   ///< clk1..clk3 with clk input low.
  double out_high[3] = {0, 0, 0};  ///< clk1..clk3 with clk input high.
  double iddq_low = 0.0;           ///< Quiescent supply, clk low.
  double iddq_high = 0.0;          ///< Quiescent supply, clk high.
  double iclk_low = 0.0;           ///< Clock input pin current, clk low.
  double iclk_high = 0.0;
  bool converged = false;
};
/// Fault-free solver state shared (read-only) by campaign workers: one
/// golden operating point per clock input level, warm-starting faulty
/// solves that keep the node layout.
struct ClockgenContext {
  std::size_t node_count = 0;
  spice::MnaMap map;
  std::vector<double> golden[2];  ///< clk low / clk high.
  spice::SolverSeed solver;       ///< Options + golden sparse symbolic.
};
ClockgenContext make_clockgen_context(const spice::Netlist& macro_netlist,
                                      const spice::SolverOptions& solver = {});

ClockgenSolution solve_clockgen(const spice::Netlist& macro_netlist,
                                const ClockgenContext* context = nullptr);

}  // namespace dot::flashadc
