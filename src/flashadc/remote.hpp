// Glue between the campaign layer and the dispatch protocol: turns a
// CampaignConfig into the dispatcher's campaign identity + validator,
// and wraps the real campaign evaluator as a dispatch::ShardRunner.
//
// The worker-side runner reuses the whole resilience stack unchanged:
// each assignment seeds a local shard journal (meta record + the
// completed class lines the dispatcher already holds), then runs the
// ordinary run_campaign with resume=true, so restored classes are
// skipped exactly like a crash-resume and only fresh records stream
// back through the journal_observer hook. Two workers handed the same
// assignment therefore emit byte-identical record lines -- the
// property the dispatcher's first-completion-wins dedup relies on.
#pragma once

#include <string>
#include <vector>

#include "dispatch/dispatcher.hpp"
#include "dispatch/worker.hpp"
#include "flashadc/campaign.hpp"

namespace dot::flashadc {

/// Macro names `config` will journal, in campaign order ("all" expands
/// to the five-macro decomposed flow).
std::vector<std::string> expected_macros(const CampaignConfig& config);

/// Dispatcher-side identity/validation/completion fields of a
/// DispatcherConfig, derived from the campaign config. The caller
/// still sets the transport and liveness knobs (journal path, shard
/// count, heartbeat, re-issue budget).
void fill_dispatcher_identity(const CampaignConfig& config,
                              dispatch::DispatcherConfig& out);

/// Worker-side shard runner: evaluates each assignment with the
/// campaign machinery, journaling locally under
/// `journal_dir/shard_<index>.jsonl` (checkpoint interval
/// `journal_sync`; dispatched workers default to 1 so a crashed
/// worker's local journal is as fresh as its record stream). The
/// returned runner is reusable across assignments.
dispatch::ShardRunner make_campaign_runner(const CampaignConfig& config,
                                           const std::string& journal_dir,
                                           std::size_t journal_sync);

}  // namespace dot::flashadc
