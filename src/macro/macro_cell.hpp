// A macro cell: the unit of the divide-and-conquer methodology. Holds
// the physical netlist, its synthesized layout, the pin list and the
// instance count inside the full circuit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "layout/cell.hpp"
#include "spice/netlist.hpp"

namespace dot::macro {

struct MacroCell {
  std::string name;
  spice::Netlist netlist;      ///< Physical devices only (no test bench).
  layout::CellLayout layout;   ///< Synthesized geometry of the netlist.
  std::vector<std::string> pins;
  std::size_t instance_count = 1;

  MacroCell(std::string name_, spice::Netlist netlist_,
            layout::CellLayout layout_, std::vector<std::string> pins_,
            std::size_t instances)
      : name(std::move(name_)),
        netlist(std::move(netlist_)),
        layout(std::move(layout_)),
        pins(std::move(pins_)),
        instance_count(instances) {}

  double cell_area() const { return layout.area(); }
  double total_area() const {
    return cell_area() * static_cast<double>(instance_count);
  }
};

}  // namespace dot::macro
