#include "macro/envelope.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace dot::macro {

GoodEnvelope::GoodEnvelope(MeasurementLayout layout,
                           util::SignatureSpace space)
    : layout_(std::move(layout)), space_(std::move(space)) {
  if (layout_.size() != space_.size())
    throw util::InvalidInputError("GoodEnvelope: layout/space size mismatch");
}

CurrentSignature GoodEnvelope::classify(
    const std::vector<double>& faulty) const {
  CurrentSignature sig;
  for (std::size_t i : space_.violations(faulty)) {
    switch (layout_.kinds[i]) {
      case MeasurementKind::kIVdd:
        sig.ivdd = true;
        break;
      case MeasurementKind::kIddq:
        sig.iddq = true;
        break;
      case MeasurementKind::kIinput:
        sig.iinput = true;
        break;
      case MeasurementKind::kOther:
        break;
    }
  }
  return sig;
}

std::vector<std::vector<double>> monte_carlo_samples(
    int count, const util::Rng& master,
    const std::function<std::optional<std::vector<double>>(int, util::Rng&)>&
        sample) {
  const auto drawn = util::parallel_map(
      static_cast<std::size_t>(count > 0 ? count : 0), [&](std::size_t i) {
        util::Rng rng = master.split(i);
        return sample(static_cast<int>(i), rng);
      });
  std::vector<std::vector<double>> samples;
  samples.reserve(drawn.size());
  for (const auto& s : drawn)
    if (s) samples.push_back(*s);
  return samples;
}

GoodEnvelope build_envelope(const MeasurementLayout& layout,
                            const std::vector<std::vector<double>>& samples,
                            const BandPolicy& policy) {
  if (samples.empty())
    throw util::InvalidInputError("build_envelope: no samples");
  std::vector<util::RunningStats> stats(layout.size());
  for (const auto& sample : samples) {
    if (sample.size() != layout.size())
      throw util::InvalidInputError("build_envelope: sample size mismatch");
    for (std::size_t i = 0; i < sample.size(); ++i) stats[i].add(sample[i]);
  }
  util::SignatureSpace space;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    double dilution = 1.0;
    if (layout.kinds[i] == MeasurementKind::kIVdd)
      dilution = policy.ivdd_dilution;
    else if (layout.kinds[i] == MeasurementKind::kIinput)
      dilution = policy.iinput_dilution;
    const double mean = stats[i].mean();
    // The statistical spread and the relative tester floor both live at
    // the chip-level summed current, so they scale with the dilution;
    // the absolute floor is the tester's resolution and does not.
    double half = policy.k_sigma * stats[i].stddev() * dilution;
    half = std::max(half, policy.abs_floor);
    half = std::max(half, policy.rel_floor * std::fabs(mean) * dilution);
    space.add_dimension(layout.names[i], util::Band{mean - half, mean + half});
  }
  return GoodEnvelope(layout, std::move(space));
}

}  // namespace dot::macro
