// Fault-dictionary diagnosis: the classic downstream application of a
// defect-oriented fault-simulation campaign. The dictionary maps
// observable signatures (which tests failed, which currents deviated)
// to the fault classes that produce them; given a failing device's
// observation, it returns the candidate defects ranked by likelihood
// (class magnitude), i.e. where to point the failure-analysis
// microscope.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "macro/detection.hpp"

namespace dot::macro {

/// The observable syndrome of a failing device under the simple tests.
struct Syndrome {
  bool missing_code = false;
  bool ivdd = false;
  bool iddq = false;
  bool iinput = false;

  bool operator==(const Syndrome&) const = default;
  /// Encodes to the dictionary bucket index (16 buckets).
  int key() const {
    return (missing_code ? 1 : 0) | (ivdd ? 2 : 0) | (iddq ? 4 : 0) |
           (iinput ? 8 : 0);
  }
};

/// One dictionary entry: a fault class and the syndrome it produces.
struct DictionaryEntry {
  fault::FaultClass cls;
  Syndrome syndrome;
};

struct Candidate {
  fault::CircuitFault fault;
  std::size_t magnitude = 0;   ///< Class count (likelihood weight).
  double posterior = 0.0;      ///< Normalized over the matching bucket.
};

class FaultDictionary {
 public:
  /// Adds one simulated fault class with its detection outcome.
  void add(const fault::FaultClass& cls, const DetectionOutcome& outcome);

  std::size_t size() const { return total_entries_; }

  /// Candidates whose syndrome matches exactly, ranked by magnitude;
  /// posteriors normalized within the bucket.
  std::vector<Candidate> diagnose(const Syndrome& observed,
                                  std::size_t max_candidates = 10) const;

  /// Diagnostic resolution metrics: how sharply the dictionary separates
  /// fault classes.
  struct Resolution {
    /// Expected posterior of the true fault (higher = sharper).
    double expected_posterior = 0.0;
    /// Number of non-empty syndrome buckets (of 16).
    int distinct_syndromes = 0;
  };
  Resolution resolution() const;

 private:
  std::vector<DictionaryEntry> buckets_[16];
  std::size_t total_entries_ = 0;
};

}  // namespace dot::macro
