// Fault signatures at the macro level (paper section 3.2, Tables 2-3).
//
// A voltage signature describes how the macro's functional behaviour
// deviates at its edge; a current signature records which quiescent
// currents leave the fault-free 3-sigma envelope.
#pragma once

#include <string>

namespace dot::macro {

/// Voltage fault signature categories for a clocked comparator-style
/// macro (paper Table 2).
enum class VoltageSignature {
  kOutputStuckAt,  ///< Output pinned to one decision regardless of input.
  kOffset,         ///< Decision threshold shifted by more than 8 mV.
  kMixed,          ///< Erratic / non-monotonic decision behaviour.
  kClockValue,     ///< Function correct but a clock line level deviates.
  kNoDeviation,    ///< Indistinguishable from the fault-free circuit.
};
inline constexpr int kVoltageSignatureCount = 5;

const std::string& voltage_signature_name(VoltageSignature signature);

/// Inverse of voltage_signature_name (journal decode); throws
/// util::InvalidInputError on an unknown name.
VoltageSignature parse_voltage_signature(const std::string& name);

/// Current fault signature flags (paper Table 3). A fault can raise
/// several flags at once (the table's percentages overlap).
struct CurrentSignature {
  bool ivdd = false;    ///< Analog supply current out of band.
  bool iddq = false;    ///< Digital (clock generator) quiescent current.
  bool iinput = false;  ///< Any input-terminal current out of band.

  bool any() const { return ivdd || iddq || iinput; }
};

/// Complete macro-level fault signature with its likelihood weight
/// (the collapsed fault-class magnitude).
struct FaultSignature {
  VoltageSignature voltage = VoltageSignature::kNoDeviation;
  CurrentSignature current;
  double weight = 0.0;
};

}  // namespace dot::macro
