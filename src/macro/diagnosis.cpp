#include "macro/diagnosis.hpp"

#include <algorithm>

namespace dot::macro {
namespace {

Syndrome syndrome_of(const DetectionOutcome& outcome) {
  Syndrome s;
  s.missing_code = outcome.missing_code;
  s.ivdd = outcome.ivdd;
  s.iddq = outcome.iddq;
  s.iinput = outcome.iinput;
  return s;
}

}  // namespace

void FaultDictionary::add(const fault::FaultClass& cls,
                          const DetectionOutcome& outcome) {
  const Syndrome s = syndrome_of(outcome);
  buckets_[s.key()].push_back({cls, s});
  ++total_entries_;
}

std::vector<Candidate> FaultDictionary::diagnose(
    const Syndrome& observed, std::size_t max_candidates) const {
  const auto& bucket = buckets_[observed.key()];
  double total = 0.0;
  for (const auto& entry : bucket)
    total += static_cast<double>(entry.cls.count);

  std::vector<Candidate> candidates;
  candidates.reserve(bucket.size());
  for (const auto& entry : bucket) {
    Candidate c;
    c.fault = entry.cls.representative;
    c.magnitude = entry.cls.count;
    c.posterior =
        total > 0.0 ? static_cast<double>(entry.cls.count) / total : 0.0;
    candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.magnitude > b.magnitude;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

FaultDictionary::Resolution FaultDictionary::resolution() const {
  Resolution r;
  double grand_total = 0.0;
  for (const auto& bucket : buckets_)
    for (const auto& entry : bucket)
      grand_total += static_cast<double>(entry.cls.count);
  if (grand_total <= 0.0) return r;

  for (const auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    ++r.distinct_syndromes;
    double bucket_total = 0.0;
    for (const auto& entry : bucket)
      bucket_total += static_cast<double>(entry.cls.count);
    // E[posterior | bucket] = sum_i (w_i / bucket_total)^2 * bucket_total
    // weighted by P(bucket); summed over buckets this is the expected
    // posterior of the true fault under the dictionary.
    double sum_sq = 0.0;
    for (const auto& entry : bucket)
      sum_sq += static_cast<double>(entry.cls.count) *
                static_cast<double>(entry.cls.count);
    r.expected_posterior += sum_sq / bucket_total / grand_total;
  }
  return r;
}

}  // namespace dot::macro
