// Detection outcomes and coverage compilation (paper figures 3-5).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "macro/signature.hpp"

namespace dot::macro {

/// Which of the four simple test mechanisms detect a fault at the
/// circuit edge (after signature propagation).
struct DetectionOutcome {
  bool missing_code = false;  ///< Voltage detection via the missing-code test.
  bool ivdd = false;
  bool iddq = false;
  bool iinput = false;

  bool voltage_detected() const { return missing_code; }
  bool current_detected() const { return ivdd || iddq || iinput; }
  bool detected() const { return voltage_detected() || current_detected(); }
};

/// One fault class's outcome with its likelihood weight.
struct WeightedOutcome {
  DetectionOutcome outcome;
  double weight = 0.0;
  /// The class never produced a trustworthy outcome (its evaluation
  /// exhausted the retry/aid budget). Unresolved weight is reported in
  /// its own bucket -- never silently counted detected or undetected.
  bool unresolved = false;
};

/// Voltage/current Venn decomposition (paper figures 4-5): fractions of
/// the total fault population (weights normalized to 1).
struct VennResult {
  double voltage_only = 0.0;
  double both = 0.0;
  double current_only = 0.0;
  double undetected = 0.0;
  /// Weight fraction of classes whose evaluation never resolved.
  double unresolved = 0.0;

  double voltage_total() const { return voltage_only + both; }
  double current_total() const { return current_only + both; }
  double detected() const { return voltage_only + both + current_only; }
};

VennResult compile_venn(const std::vector<WeightedOutcome>& outcomes);

/// Full 16-cell mechanism matrix (paper figure 3): weight fraction for
/// every subset of {missing code, IVdd, IDDQ, Iinput}.
struct MechanismMatrix {
  /// Index = bit0 missing_code | bit1 ivdd | bit2 iddq | bit3 iinput.
  std::array<double, 16> fraction{};
  /// Weight fraction of classes whose evaluation never resolved (kept
  /// out of every cell, including the undetected one).
  double unresolved = 0.0;

  double detected() const { return 1.0 - fraction[0] - unresolved; }
  /// Fraction detected by the given mechanism (alone or combined).
  double by_mechanism(int bit) const;
  /// Fraction detected ONLY by the given mechanism.
  double only_mechanism(int bit) const;
};

MechanismMatrix compile_matrix(const std::vector<WeightedOutcome>& outcomes);

/// One macro's contribution to the global (whole-circuit) figure:
/// its per-fault outcomes plus its share of the chip area. The paper
/// scales macro fault probabilities by area, assuming equal defect
/// density everywhere (section 3.3).
struct MacroContribution {
  std::string name;
  double cell_area = 0.0;        ///< One instance's layout area.
  std::size_t instance_count = 1;
  std::vector<WeightedOutcome> outcomes;

  double total_area() const {
    return cell_area * static_cast<double>(instance_count);
  }
};

/// Area-weighted global compilation across macros.
VennResult compile_global(const std::vector<MacroContribution>& macros);
MechanismMatrix compile_global_matrix(
    const std::vector<MacroContribution>& macros);

}  // namespace dot::macro
