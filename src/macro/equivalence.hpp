// Decomposition-equivalence layer: maps fault classes extracted from a
// composite cell (a flat comparator bank) back onto the per-slice macro
// the divide-and-conquer methodology simulates instead, and quantifies
// what the decomposition hides.
//
// The paper's macro partitioning assumes every defect lands inside one
// macro's footprint. On a flat layout that assumption fails in two
// ways this layer makes explicit:
//  - genuine inter-slice coupling faults (a bridge between two slices'
//    internal nets, an adjacent reference-tap short) have NO counterpart
//    in any single-slice campaign;
//  - shared-distribution faults (bias/clock/supply bridges) exist in the
//    per-slice macro too, but with per-instance likelihood weights
//    instead of one column-wide class.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "macro/detection.hpp"
#include "macro/signature.hpp"

namespace dot::macro {

/// Where a composite-cell fault class lands under slice decomposition.
enum class FaultLocality {
  kSliceLocal,  ///< Every net/device maps into one slice (+ shared pins).
  kShared,      ///< Only shared distribution nets: seen by every slice.
  kInterSlice,  ///< Couples >= 2 slices: invisible to the decomposition.
  kUnmappable,  ///< Needs hardware the sub-macro does not contain.
};
inline constexpr int kFaultLocalityCount = 4;

const std::string& fault_locality_name(FaultLocality locality);

/// Maps one composite-cell name into (slice, sub-cell name). Slice -1
/// means shared (present in the sub-cell under the same name); an empty
/// mapped name means "belongs to that slice but has no sub-cell
/// counterpart" (e.g. the reference-string resistors); nullopt means
/// unknown, which project_fault treats as unmappable.
using SliceNameMap =
    std::function<std::optional<std::pair<int, std::string>>(
        const std::string&)>;

struct SliceMapper {
  SliceNameMap net;
  SliceNameMap device;
};

/// A composite-cell fault projected onto the sub-cell namespace.
struct ProjectedFault {
  FaultLocality locality = FaultLocality::kUnmappable;
  /// Owning slice for kSliceLocal; lowest touched slice for
  /// kInterSlice; -1 for kShared / kUnmappable.
  int slice = -1;
  /// Valid for kSliceLocal and kShared only: the equivalent sub-cell
  /// fault, in sub-cell net/device names.
  std::optional<fault::CircuitFault> fault;
};

/// Projects a composite fault through the mapper. Nets/devices that map
/// to different slices demote the fault to kInterSlice; names the
/// mapper cannot place (or that have no sub-cell counterpart) demote it
/// to kUnmappable.
ProjectedFault project_fault(const fault::CircuitFault& fault,
                             const SliceMapper& mapper);

/// One composite-cell fault class diffed against its projected
/// counterpart's evaluation.
struct EquivalenceEntry {
  std::size_t index = 0;  ///< Class index in the composite campaign.
  FaultLocality locality = FaultLocality::kUnmappable;
  int slice = -1;
  double weight = 0.0;  ///< Class magnitude (likelihood).
  std::string composite_key;  ///< CircuitFault::key() of the bank class.
  std::string projected_key;  ///< Key of the projection (mapped classes).
  /// Composite- and sub-macro-level evaluations (sub side only for
  /// mapped classes).
  VoltageSignature composite_voltage = VoltageSignature::kNoDeviation;
  VoltageSignature projected_voltage = VoltageSignature::kNoDeviation;
  DetectionOutcome composite_detection;
  DetectionOutcome projected_detection;
  bool composite_unresolved = false;
  bool projected_unresolved = false;

  /// Both campaigns resolved and the class is mapped: the diff below is
  /// meaningful.
  bool comparable() const {
    return (locality == FaultLocality::kSliceLocal ||
            locality == FaultLocality::kShared) &&
           !composite_unresolved && !projected_unresolved;
  }
  /// Same detected-at-all verdict.
  bool verdict_match() const {
    return composite_detection.detected() == projected_detection.detected();
  }
  /// Same per-mechanism detection flags.
  bool detection_match() const {
    return composite_detection.missing_code ==
               projected_detection.missing_code &&
           composite_detection.ivdd == projected_detection.ivdd &&
           composite_detection.iddq == projected_detection.iddq &&
           composite_detection.iinput == projected_detection.iinput;
  }
  /// Same voltage-signature class (Table 2 bucket).
  bool signature_match() const {
    return composite_voltage == projected_voltage;
  }
};

/// The diff of a flat-composite campaign against its decomposition.
/// Weights are normalized over ALL composite classes, so the buckets --
/// including the inter-slice weight the decomposition never sees --
/// account for the full denominator.
struct EquivalenceReport {
  std::vector<EquivalenceEntry> entries;

  /// Weight fraction per locality bucket (sums to 1 with unresolved).
  std::array<double, kFaultLocalityCount> locality_weight{};
  /// Weight fraction of composite classes that never resolved.
  double unresolved_weight = 0.0;
  /// Among comparable classes: weight fractions (of the comparable
  /// weight) agreeing on each criterion.
  double verdict_agreement = 0.0;
  double detection_agreement = 0.0;
  double signature_agreement = 0.0;
  /// Detected weight fraction over the full composite population...
  double composite_coverage = 0.0;
  /// ...and what the decomposition would report for the same classes:
  /// projected verdicts for mapped classes; inter-slice and unmappable
  /// weight carried undetected (the decomposition never simulates it).
  double decomposed_coverage = 0.0;

  std::size_t comparable_classes = 0;
  std::size_t verdict_mismatches = 0;

  double slice_local_weight() const {
    return locality_weight[static_cast<int>(FaultLocality::kSliceLocal)];
  }
  double shared_weight() const {
    return locality_weight[static_cast<int>(FaultLocality::kShared)];
  }
  double inter_slice_weight() const {
    return locality_weight[static_cast<int>(FaultLocality::kInterSlice)];
  }
  double unmappable_weight() const {
    return locality_weight[static_cast<int>(FaultLocality::kUnmappable)];
  }
};

/// Compiles the per-entry diff list into the report: bucket weights,
/// agreement rates and the coverage comparison. Entries keep their
/// order.
EquivalenceReport compile_equivalence(std::vector<EquivalenceEntry> entries);

}  // namespace dot::macro
