// Good-signature envelope for current testing.
//
// The paper: "the output of a fault-free circuit can vary under the
// influence of environmental conditions like process, supply voltage and
// temperature. Thus the good signature is a multi-dimensional space ...
// the faulty circuit has to have a response outside this space to be
// recognized as faulty." Detection bands are mean +/- 3 sigma over a
// Monte-Carlo population of fault-free circuits.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "macro/signature.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dot::macro {

/// Which test mechanism a measurement dimension belongs to.
enum class MeasurementKind { kIVdd, kIddq, kIinput, kOther };

/// Names + kinds of a macro's measurement vector; every simulation of
/// that macro (good or faulty) must produce values in this exact order.
struct MeasurementLayout {
  std::vector<std::string> names;
  std::vector<MeasurementKind> kinds;

  std::size_t size() const { return names.size(); }
  void add(std::string name, MeasurementKind kind) {
    names.push_back(std::move(name));
    kinds.push_back(kind);
  }
};

/// Band width policy: 3-sigma widened to a measurement-noise floor
/// (a real tester cannot resolve arbitrarily small current deltas).
///
/// The dilution factors model shared chip-level measurements: the
/// analog supply and input currents sum over every instance of the
/// macro, so the fault-free spread ONE faulty instance must escape
/// scales with the instance count. The digital quiescent current does
/// not suffer this -- a fault-free digital part draws (nearly) nothing
/// no matter how many instances -- which is precisely why IDDQ testing
/// is so powerful in the paper.
struct BandPolicy {
  double k_sigma = 3.0;
  double abs_floor = 1e-6;   ///< Half-width floor, absolute [A].
  double rel_floor = 0.02;   ///< Half-width floor, relative to |mean|.
  double ivdd_dilution = 1.0;    ///< Width multiplier for kIVdd dims.
  double iinput_dilution = 1.0;  ///< Width multiplier for kIinput dims.
};

class GoodEnvelope {
 public:
  GoodEnvelope(MeasurementLayout layout, util::SignatureSpace space);

  const MeasurementLayout& layout() const { return layout_; }
  const util::SignatureSpace& space() const { return space_; }

  /// Classifies a faulty measurement vector: which current mechanisms
  /// see an out-of-band value.
  CurrentSignature classify(const std::vector<double>& faulty) const;

  /// True when the vector stays inside every band.
  bool inside(const std::vector<double>& values) const {
    return space_.inside(values);
  }

 private:
  MeasurementLayout layout_;
  util::SignatureSpace space_;
};

/// Builds the envelope from fault-free Monte-Carlo samples.
GoodEnvelope build_envelope(const MeasurementLayout& layout,
                            const std::vector<std::vector<double>>& samples,
                            const BandPolicy& policy = {});

/// Collects the fault-free Monte-Carlo population in parallel with
/// per-sample counter-based RNG streams: sample i always draws from
/// master.split(i), so the population is bit-identical at any thread
/// count. `sample` returns the measurement vector of one perturbed
/// fault-free circuit, or nullopt to drop the sample (no operating
/// point); surviving samples keep their index order.
std::vector<std::vector<double>> monte_carlo_samples(
    int count, const util::Rng& master,
    const std::function<std::optional<std::vector<double>>(int, util::Rng&)>&
        sample);

}  // namespace dot::macro
