#include "macro/equivalence.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dot::macro {

const std::string& fault_locality_name(FaultLocality locality) {
  static const std::string names[kFaultLocalityCount] = {
      "slice_local", "shared", "inter_slice", "unmappable"};
  const int i = static_cast<int>(locality);
  if (i < 0 || i >= kFaultLocalityCount)
    throw util::InvalidInputError("fault_locality_name: bad locality");
  return names[i];
}

namespace {

/// Accumulates the slice ownership of one projected name.
struct SliceTracker {
  int slice = -1;          ///< Owning slice so far (-1: only shared seen).
  int lowest = -1;         ///< Lowest slice touched (inter-slice report).
  bool inter_slice = false;
  bool unmappable = false;

  void add(const std::optional<std::pair<int, std::string>>& mapped) {
    if (!mapped) {
      unmappable = true;
      return;
    }
    const int s = mapped->first;
    if (s < 0) return;  // shared name
    if (mapped->second.empty()) unmappable = true;  // no sub-cell hardware
    if (lowest < 0 || s < lowest) lowest = s;
    if (slice < 0)
      slice = s;
    else if (slice != s)
      inter_slice = true;
  }
};

}  // namespace

ProjectedFault project_fault(const fault::CircuitFault& fault,
                             const SliceMapper& mapper) {
  ProjectedFault out;
  SliceTracker tracker;
  fault::CircuitFault projected = fault;

  for (auto& net : projected.nets) {
    const auto mapped = mapper.net(net);
    tracker.add(mapped);
    if (mapped && !mapped->second.empty()) net = mapped->second;
  }
  if (!projected.device.empty()) {
    const auto mapped = mapper.device(projected.device);
    tracker.add(mapped);
    if (mapped && !mapped->second.empty()) projected.device = mapped->second;
  }
  if (!projected.gate_net.empty()) {
    const auto mapped = mapper.net(projected.gate_net);
    tracker.add(mapped);
    if (mapped && !mapped->second.empty()) projected.gate_net = mapped->second;
  }
  for (auto& tap : projected.isolated_taps) {
    const auto mapped = mapper.device(tap.device);
    tracker.add(mapped);
    if (mapped && !mapped->second.empty()) tap.device = mapped->second;
  }

  if (tracker.inter_slice) {
    // Couples several slices: no single-slice campaign contains it,
    // whether or not every name would map individually.
    out.locality = FaultLocality::kInterSlice;
    out.slice = tracker.lowest;
    return out;
  }
  if (tracker.unmappable) {
    out.locality = FaultLocality::kUnmappable;
    out.slice = tracker.slice;
    return out;
  }
  // Projected nets must stay sorted for key() canonicality: the prefix
  // strip can reorder them.
  std::sort(projected.nets.begin(), projected.nets.end());
  projected.nets.erase(
      std::unique(projected.nets.begin(), projected.nets.end()),
      projected.nets.end());
  out.locality = tracker.slice >= 0 ? FaultLocality::kSliceLocal
                                    : FaultLocality::kShared;
  out.slice = tracker.slice;
  out.fault = std::move(projected);
  return out;
}

EquivalenceReport compile_equivalence(std::vector<EquivalenceEntry> entries) {
  EquivalenceReport report;
  double total = 0.0, unresolved = 0.0;
  double comparable = 0.0, verdict = 0.0, detection = 0.0, signature = 0.0;
  double composite_detected = 0.0, decomposed_detected = 0.0;
  std::array<double, kFaultLocalityCount> buckets{};

  for (const auto& e : entries) {
    total += e.weight;
    buckets[static_cast<int>(e.locality)] += e.weight;
    if (e.composite_unresolved) {
      unresolved += e.weight;
      continue;
    }
    if (e.composite_detection.detected()) composite_detected += e.weight;
    const bool mapped = e.locality == FaultLocality::kSliceLocal ||
                        e.locality == FaultLocality::kShared;
    if (mapped && !e.projected_unresolved &&
        e.projected_detection.detected())
      decomposed_detected += e.weight;
    if (!e.comparable()) continue;
    comparable += e.weight;
    ++report.comparable_classes;
    if (e.verdict_match())
      verdict += e.weight;
    else
      ++report.verdict_mismatches;
    if (e.detection_match()) detection += e.weight;
    if (e.signature_match()) signature += e.weight;
  }

  if (total > 0.0) {
    for (auto& b : buckets) b /= total;
    report.unresolved_weight = unresolved / total;
    report.composite_coverage = composite_detected / total;
    report.decomposed_coverage = decomposed_detected / total;
  }
  report.locality_weight = buckets;
  if (comparable > 0.0) {
    report.verdict_agreement = verdict / comparable;
    report.detection_agreement = detection / comparable;
    report.signature_agreement = signature / comparable;
  }
  report.entries = std::move(entries);
  return report;
}

}  // namespace dot::macro
