#include "macro/detection.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dot::macro {
namespace {

const std::array<std::string, kVoltageSignatureCount> kVoltageNames = {
    "Output Stuck At", "Offset (> 8mV)", "Mixed", "Clock value",
    "No deviations"};

int outcome_bits(const DetectionOutcome& o) {
  return (o.missing_code ? 1 : 0) | (o.ivdd ? 2 : 0) | (o.iddq ? 4 : 0) |
         (o.iinput ? 8 : 0);
}

double total_weight(const std::vector<WeightedOutcome>& outcomes) {
  double total = 0.0;
  for (const auto& wo : outcomes) total += wo.weight;
  return total;
}

}  // namespace

const std::string& voltage_signature_name(VoltageSignature signature) {
  return kVoltageNames[static_cast<std::size_t>(signature)];
}

VoltageSignature parse_voltage_signature(const std::string& name) {
  for (std::size_t i = 0; i < kVoltageNames.size(); ++i)
    if (kVoltageNames[i] == name) return static_cast<VoltageSignature>(i);
  throw util::InvalidInputError("unknown voltage signature: " + name);
}

VennResult compile_venn(const std::vector<WeightedOutcome>& outcomes) {
  VennResult result;
  const double total = total_weight(outcomes);
  if (total <= 0.0) return result;
  for (const auto& wo : outcomes) {
    const double w = wo.weight / total;
    if (wo.unresolved) {
      result.unresolved += w;
      continue;
    }
    const bool v = wo.outcome.voltage_detected();
    const bool c = wo.outcome.current_detected();
    if (v && c)
      result.both += w;
    else if (v)
      result.voltage_only += w;
    else if (c)
      result.current_only += w;
    else
      result.undetected += w;
  }
  return result;
}

double MechanismMatrix::by_mechanism(int bit) const {
  double sum = 0.0;
  for (int mask = 1; mask < 16; ++mask)
    if (mask & bit) sum += fraction[static_cast<std::size_t>(mask)];
  return sum;
}

double MechanismMatrix::only_mechanism(int bit) const {
  return fraction[static_cast<std::size_t>(bit)];
}

MechanismMatrix compile_matrix(const std::vector<WeightedOutcome>& outcomes) {
  MechanismMatrix matrix;
  const double total = total_weight(outcomes);
  if (total <= 0.0) return matrix;
  for (const auto& wo : outcomes) {
    if (wo.unresolved) {
      matrix.unresolved += wo.weight / total;
      continue;
    }
    matrix.fraction[static_cast<std::size_t>(outcome_bits(wo.outcome))] +=
        wo.weight / total;
  }
  return matrix;
}

namespace {

/// Scales each macro's outcome weights so its total equals its share of
/// the chip area (equal defect density), then concatenates.
std::vector<WeightedOutcome> area_scaled_outcomes(
    const std::vector<MacroContribution>& macros) {
  double chip_area = 0.0;
  for (const auto& m : macros) chip_area += m.total_area();
  if (chip_area <= 0.0)
    throw util::InvalidInputError("compile_global: zero total area");

  std::vector<WeightedOutcome> all;
  for (const auto& m : macros) {
    const double macro_weight = total_weight(m.outcomes);
    if (macro_weight <= 0.0) continue;
    const double scale = (m.total_area() / chip_area) / macro_weight;
    for (const auto& wo : m.outcomes)
      all.push_back({wo.outcome, wo.weight * scale, wo.unresolved});
  }
  return all;
}

}  // namespace

VennResult compile_global(const std::vector<MacroContribution>& macros) {
  return compile_venn(area_scaled_outcomes(macros));
}

MechanismMatrix compile_global_matrix(
    const std::vector<MacroContribution>& macros) {
  return compile_matrix(area_scaled_outcomes(macros));
}

}  // namespace dot::macro
