// Thin POSIX TCP + poll(2) wrappers for the campaign dispatch layer.
//
// Scope is deliberately narrow: IPv4 stream sockets, nonblocking reads,
// bounded blocking writes, and a poll wrapper -- just enough transport
// for the dispatcher event loop and the worker client, with every
// failure surfaced as util::IoError (errno text included) instead of a
// raw -1. Reads never block (the event loop owns the waiting); writes
// poll for writability with a deadline so a dead peer with a full
// socket buffer stalls the caller for at most the timeout, not forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dot::util {

/// Result of a nonblocking read.
enum class ReadStatus {
  kData,        ///< >= 1 byte read.
  kWouldBlock,  ///< Nothing buffered; try again after poll.
  kClosed,      ///< Peer closed (EOF) or connection reset.
};

/// Move-only owner of one connected TCP stream. The descriptor is
/// nonblocking and TCP_NODELAY (frames are small; latency matters for
/// heartbeats). Writes suppress SIGPIPE via MSG_NOSIGNAL.
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Adopts a connected descriptor (sets nonblocking + nodelay).
  explicit TcpSocket(int fd);
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (dotted IPv4 or "localhost") within
  /// timeout_ms. Throws IoError on refusal, timeout, or a bad host.
  static TcpSocket connect(const std::string& host, std::uint16_t port,
                           double timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Nonblocking read of up to `n` bytes into `buf`; `got` receives the
  /// byte count on kData. Hard errors throw IoError; a reset peer is
  /// reported as kClosed (the dispatch layer treats resets like EOF --
  /// a dead worker, not an infrastructure failure).
  ReadStatus read_some(void* buf, std::size_t n, std::size_t& got);

  /// Writes the whole buffer, polling for writability whenever the
  /// socket buffer fills. Returns false when the peer is gone or the
  /// deadline expires (callers treat both as a dead connection); throws
  /// IoError only on unexpected local failures.
  bool write_all(const void* data, std::size_t n, double timeout_ms);

  void close();

 private:
  int fd_ = -1;
};

/// Move-only listening socket, loopback-bound by default (the test and
/// smoke topology); port 0 picks an ephemeral port, readable via
/// port(). `any_interface` binds 0.0.0.0 for real fleets.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static TcpListener bind(std::uint16_t port, bool any_interface = false);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound port (resolves port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection, or an invalid socket when none is
  /// queued (the listener is nonblocking).
  TcpSocket accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// One descriptor in a poll set. `readable`/`hangup` are outputs.
struct PollItem {
  int fd = -1;
  bool readable = false;
  bool hangup = false;
};

/// poll(2) for readability over `items` with a timeout in milliseconds
/// (<0 = wait forever, 0 = nonblocking). Returns the number of ready
/// descriptors; EINTR is reported as 0 ready, not an error, so signal
/// arrival falls through to the caller's shutdown poll.
int poll_readable(std::vector<PollItem>& items, double timeout_ms);

}  // namespace dot::util
