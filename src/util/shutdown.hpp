// Cooperative SIGINT/SIGTERM shutdown for long campaigns.
//
// arm_shutdown_handler() installs async-signal-safe handlers that only
// set a flag; the campaign layer polls shutdown_requested() at class
// granularity and skips the remaining work, so an interrupted run still
// flushes its journal and emits a partial report (with an explicit
// `interrupted` marker) instead of dying with unflushed state. A second
// signal restores the default disposition, so a wedged run can still be
// killed the hard way.
#pragma once

namespace dot::util {

/// Installs the SIGINT/SIGTERM handlers. Idempotent; call once near the
/// top of main() in long-running binaries.
void arm_shutdown_handler();

/// True once a shutdown signal arrived. Cheap enough for per-class
/// polling in campaign loops.
bool shutdown_requested();

/// The signal that triggered shutdown (0 when none); callers exit with
/// the conventional 128 + signal.
int shutdown_signal();

/// Exit status for an interrupted run: 128 + signal, or 0 when no
/// shutdown was requested.
int shutdown_exit_status();

/// Test hook: clears the flag so one process can exercise several
/// interrupt scenarios.
void reset_shutdown_for_tests();

}  // namespace dot::util
