// Library-wide error types. All throwing code paths use these so callers
// can distinguish user errors (bad netlist, bad arguments) from numeric
// failures (non-convergence, singular matrix).
#pragma once

#include <stdexcept>
#include <string>

namespace dot::util {

/// Malformed input: inconsistent netlist, unknown node, bad layout, ...
class InvalidInputError : public std::runtime_error {
 public:
  explicit InvalidInputError(const std::string& what)
      : std::runtime_error("invalid input: " + what) {}
};

/// Numeric failure: Newton-Raphson did not converge, singular Jacobian.
/// Fault simulation treats these as "pathological fault" and records the
/// fault as detected-by-construction only if the good circuit converges.
class ConvergenceError : public std::runtime_error {
 public:
  explicit ConvergenceError(const std::string& what)
      : std::runtime_error("convergence failure: " + what) {}
};

}  // namespace dot::util
