// Library-wide error types. All throwing code paths use these so callers
// can distinguish user errors (bad netlist, bad arguments) from numeric
// failures (non-convergence, singular matrix) and from campaign
// infrastructure failures (evaluation budgets, shard/journal handling).
#pragma once

#include <cstddef>
#include <exception>
#include <stdexcept>
#include <string>

namespace dot::util {

/// Sentinel for "no fault-class index attached" on the resilience
/// errors below.
inline constexpr std::size_t kNoClassIndex = static_cast<std::size_t>(-1);

/// Malformed input: inconsistent netlist, unknown node, bad layout, ...
class InvalidInputError : public std::runtime_error {
 public:
  explicit InvalidInputError(const std::string& what)
      : std::runtime_error("invalid input: " + what) {}
};

/// Numeric failure: Newton-Raphson did not converge, singular Jacobian.
/// Fault simulation treats these as "pathological fault" and records the
/// fault as detected-by-construction only if the good circuit converges.
class ConvergenceError : public std::runtime_error {
 public:
  explicit ConvergenceError(const std::string& what)
      : std::runtime_error("convergence failure: " + what) {}
};

/// Wall-clock (or injected) evaluation budget exhausted while working on
/// one fault class. Unlike ConvergenceError this is NOT a statement
/// about the circuit -- the class outcome is unknown -- so the campaign
/// layer retries under escalating solver aids and finally records the
/// class as unresolved instead of detected-by-construction.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what,
                        std::size_t class_index = kNoClassIndex,
                        std::string macro = {})
      : std::runtime_error(annotate(what, class_index, macro)),
        class_index_(class_index),
        macro_(std::move(macro)) {}

  std::size_t class_index() const { return class_index_; }
  const std::string& macro() const { return macro_; }

 private:
  static std::string annotate(const std::string& what, std::size_t index,
                              const std::string& macro) {
    std::string msg = "evaluation timeout: " + what;
    if (!macro.empty()) msg += " [macro " + macro + "]";
    if (index != kNoClassIndex)
      msg += " [class " + std::to_string(index) + "]";
    return msg;
  }

  std::size_t class_index_ = kNoClassIndex;
  std::string macro_;
};

/// Operating-system I/O failure on the dispatch transport: socket
/// creation, bind/listen/connect, read/write, poll. The message carries
/// errno text; campaign state is never touched by the failing call.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what)
      : std::runtime_error("io error: " + what) {}
};

/// A peer violated the dispatch wire protocol: bad frame length, an
/// unparseable or out-of-order message, a class record the sender does
/// not own. The offending connection is dropped; the campaign degrades
/// to re-issue instead of merging the tainted data.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol error: " + what) {}
};

/// Shard / journal infrastructure failure: inconsistent shard
/// arguments, a journal that does not match the campaign configuration,
/// corrupt journal records, an incomplete shard set at merge time.
class ShardError : public std::runtime_error {
 public:
  explicit ShardError(const std::string& what,
                      std::size_t class_index = kNoClassIndex,
                      std::string macro = {})
      : std::runtime_error(annotate(what, class_index, macro)),
        class_index_(class_index),
        macro_(std::move(macro)) {}

  std::size_t class_index() const { return class_index_; }
  const std::string& macro() const { return macro_; }

 private:
  static std::string annotate(const std::string& what, std::size_t index,
                              const std::string& macro) {
    std::string msg = "shard error: " + what;
    if (!macro.empty()) msg += " [macro " + macro + "]";
    if (index != kNoClassIndex)
      msg += " [class " + std::to_string(index) + "]";
    return msg;
  }

  std::size_t class_index_ = kNoClassIndex;
  std::string macro_;
};

/// Rethrown by parallel sections in first-error mode: the message names
/// the failing chunk (and the caller-supplied context label) so a
/// campaign abort identifies *which* work item died; the original
/// exception stays reachable for callers that need the precise type.
class ParallelError : public std::runtime_error {
 public:
  ParallelError(const std::string& what, std::size_t chunk,
                std::exception_ptr original)
      : std::runtime_error(what), chunk_(chunk), original_(original) {}

  std::size_t chunk() const { return chunk_; }
  std::exception_ptr original() const { return original_; }

 private:
  std::size_t chunk_ = 0;
  std::exception_ptr original_;
};

}  // namespace dot::util
