#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "util/error.hpp"

namespace dot::util {

namespace {

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : parallelism_(resolve_threads(threads)) {
  workers_.reserve(parallelism_ - 1);
  for (unsigned i = 0; i + 1 < parallelism_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    // No helpers: parallel_for callers drain their own chunks, so a
    // submitted helper job would only ever find an empty range. Run it
    // now to keep submit() usable on a single-thread pool.
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_thread_count(unsigned threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  slot.reset();  // join the old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(threads);
}

unsigned ThreadPool::global_thread_count() {
  return global().thread_count();
}

namespace {

/// Builds the first-error-mode wrapper: context label + chunk index +
/// the original what(), with the original exception kept reachable.
ParallelError wrap_chunk_error(const char* context, const ChunkError& failed) {
  std::string msg = "parallel section";
  if (context != nullptr && context[0] != '\0')
    msg += std::string(" [") + context + "]";
  msg += ": chunk " + std::to_string(failed.chunk) + " (indices [" +
         std::to_string(failed.begin) + ", " + std::to_string(failed.end) +
         ")) failed: " + failed.message;
  return ParallelError(msg, failed.chunk, failed.error);
}

std::string describe_exception(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void parallel_chunks(std::size_t count, const ParallelOptions& options,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t parallelism = pool.thread_count();
  std::size_t chunk = options.chunk;
  if (chunk == 0)
    chunk = std::max<std::size_t>(1, count / (parallelism * 8));
  const std::size_t chunks = (count + chunk - 1) / chunk;
  const bool collect = options.errors != nullptr;

  if (parallelism <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(count, lo + chunk);
      try {
        body(lo, hi);
      } catch (...) {
        ChunkError failed{c, lo, hi, describe_exception(std::current_exception()),
                          std::current_exception()};
        if (!collect) throw wrap_chunk_error(options.context, failed);
        options.errors->push_back(std::move(failed));
      }
    }
    return;
  }

  // Shared loop state. Helper jobs hold the shared_ptr, so a helper
  // that is scheduled long after the loop finished (pool was busy)
  // still finds valid state -- it sees next >= chunks and exits without
  // touching `body`, which may be gone by then.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    bool collect = false;
    std::size_t chunk = 0;
    std::size_t count = 0;
    std::size_t chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<ChunkError> errors;
  };
  auto state = std::make_shared<State>();
  state->collect = collect;
  state->chunk = chunk;
  state->count = count;
  state->chunks = chunks;
  state->body = &body;

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) return;
      // Collect mode runs every chunk; first-error mode skips the rest
      // once something failed.
      if (s->collect || !s->failed.load(std::memory_order_relaxed)) {
        const std::size_t lo = c * s->chunk;
        const std::size_t hi = std::min(s->count, lo + s->chunk);
        try {
          (*s->body)(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->mutex);
          s->errors.push_back(
              {c, lo, hi, describe_exception(std::current_exception()),
               std::current_exception()});
          s->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(parallelism - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    pool.submit([state, drain] { drain(state); });
  drain(state);  // the caller participates; guarantees forward progress

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->chunks;
    });
  }
  if (state->errors.empty()) return;
  // Arrival order depends on scheduling; chunk order does not.
  std::sort(state->errors.begin(), state->errors.end(),
            [](const ChunkError& a, const ChunkError& b) {
              return a.chunk < b.chunk;
            });
  if (collect) {
    for (auto& e : state->errors) options.errors->push_back(std::move(e));
    return;
  }
  throw wrap_chunk_error(options.context, state->errors.front());
}

void parallel_chunks(std::size_t count, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  ParallelOptions options;
  options.chunk = chunk;
  parallel_chunks(count, options, body);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_chunks(count, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for(std::size_t count, const ParallelOptions& options,
                  const std::function<void(std::size_t)>& body) {
  parallel_chunks(count, options, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace dot::util
