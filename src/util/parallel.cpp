#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dot::util {

namespace {

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : parallelism_(resolve_threads(threads)) {
  workers_.reserve(parallelism_ - 1);
  for (unsigned i = 0; i + 1 < parallelism_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    // No helpers: parallel_for callers drain their own chunks, so a
    // submitted helper job would only ever find an empty range. Run it
    // now to keep submit() usable on a single-thread pool.
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_thread_count(unsigned threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  slot.reset();  // join the old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(threads);
}

unsigned ThreadPool::global_thread_count() {
  return global().thread_count();
}

void parallel_chunks(std::size_t count, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t parallelism = pool.thread_count();
  if (chunk == 0)
    chunk = std::max<std::size_t>(1, count / (parallelism * 8));
  const std::size_t chunks = (count + chunk - 1) / chunk;

  if (parallelism <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c)
      body(c * chunk, std::min(count, (c + 1) * chunk));
    return;
  }

  // Shared loop state. Helper jobs hold the shared_ptr, so a helper
  // that is scheduled long after the loop finished (pool was busy)
  // still finds valid state -- it sees next >= chunks and exits without
  // touching `body`, which may be gone by then.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::size_t chunk = 0;
    std::size_t count = 0;
    std::size_t chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->chunk = chunk;
  state->count = count;
  state->chunks = chunks;
  state->body = &body;

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) return;
      if (!s->failed.load(std::memory_order_relaxed)) {
        try {
          const std::size_t lo = c * s->chunk;
          (*s->body)(lo, std::min(s->count, lo + s->chunk));
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->mutex);
          if (!s->error) s->error = std::current_exception();
          s->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(parallelism - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    pool.submit([state, drain] { drain(state); });
  drain(state);  // the caller participates; guarantees forward progress

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_chunks(count, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace dot::util
