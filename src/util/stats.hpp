// Streaming statistics used for the fault-free "good signature" envelope
// (the paper detects a fault when a measurement falls outside the 3-sigma
// spread of the fault-free circuit over process / supply / temperature).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace dot::util {

/// Welford one-pass mean / variance with min / max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Acceptance band for one scalar measurement, usually mean +/- k*sigma.
struct Band {
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double x) const { return x >= lo && x <= hi; }
  double width() const { return hi - lo; }
};

/// Multi-dimensional good-signature space: one band per named measurement.
/// A response is "inside" only if every component is inside its band --
/// a faulty circuit must leave the space in at least one dimension to be
/// recognized (paper, section 2).
class SignatureSpace {
 public:
  void add_dimension(std::string name, Band band);

  std::size_t size() const { return names_.size(); }
  const std::string& name(std::size_t i) const { return names_[i]; }
  const Band& band(std::size_t i) const { return bands_[i]; }

  /// Index of the named dimension, or npos if absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& name) const;

  bool inside(const std::vector<double>& response) const;

  /// Indices of dimensions where the response escapes its band.
  std::vector<std::size_t> violations(const std::vector<double>& response) const;

 private:
  std::vector<std::string> names_;
  std::vector<Band> bands_;
};

/// Builds a SignatureSpace from per-dimension sample sets:
/// band = mean +/- k_sigma * stddev, widened to at least min_width to
/// avoid zero-width bands on perfectly deterministic measurements.
class EnvelopeBuilder {
 public:
  explicit EnvelopeBuilder(double k_sigma = 3.0, double min_width = 0.0)
      : k_sigma_(k_sigma), min_width_(min_width) {}

  /// Adds one Monte-Carlo sample vector; all samples must agree in size
  /// and dimension order with the names passed to build().
  void add_sample(const std::vector<double>& response);

  SignatureSpace build(const std::vector<std::string>& names) const;

  std::size_t sample_count() const { return stats_.empty() ? 0 : stats_[0].count(); }

 private:
  double k_sigma_;
  double min_width_;
  std::vector<RunningStats> stats_;
};

/// Fixed-bin histogram for diagnostics and ablation benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace dot::util
