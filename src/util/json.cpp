#include "util/json.hpp"

#include <cstdio>

namespace dot::util {

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) os_ << ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::raw(const std::string& text) {
  comma();
  os_ << text;
}

void JsonWriter::begin_object() {
  comma();
  os_ << '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  os_ << '}';
  need_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  os_ << '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  os_ << ']';
  need_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  comma();
  os_ << json_quote(name) << ':';
  after_key_ = true;
}

void JsonWriter::value(const std::string& text) { raw(json_quote(text)); }
void JsonWriter::value(const char* text) { raw(json_quote(text)); }

void JsonWriter::value(double number) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", number);
  raw(buf);
}

void JsonWriter::value(std::size_t number) { raw(std::to_string(number)); }
void JsonWriter::value(int number) { raw(std::to_string(number)); }
void JsonWriter::value(bool flag) { raw(flag ? "true" : "false"); }

}  // namespace dot::util
