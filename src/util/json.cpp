#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace dot::util {

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) os_ << ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::raw(const std::string& text) {
  comma();
  os_ << text;
}

void JsonWriter::begin_object() {
  comma();
  os_ << '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  os_ << '}';
  need_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  os_ << '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  os_ << ']';
  need_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  comma();
  os_ << json_quote(name) << ':';
  after_key_ = true;
}

void JsonWriter::value(const std::string& text) { raw(json_quote(text)); }
void JsonWriter::value(const char* text) { raw(json_quote(text)); }

void JsonWriter::value(double number) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", number);
  raw(buf);
}

void JsonWriter::value(std::size_t number) { raw(std::to_string(number)); }
void JsonWriter::value(int number) { raw(std::to_string(number)); }
void JsonWriter::value(bool flag) { raw(flag ? "true" : "false"); }

// ---------------------------------------------------------------------
// JsonValue + parser.

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw InvalidInputError(std::string("json: expected ") + wanted +
                          ", found " + names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

std::size_t JsonValue::as_size() const {
  const double n = as_number();
  if (n < 0.0) throw InvalidInputError("json: negative count");
  return static_cast<std::size_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw InvalidInputError("json: missing key '" + key + "'");
  return *v;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-limited so a
/// corrupt journal line cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInputError("json: " + what + " at byte " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // BMP point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) fail("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace dot::util
