#include "util/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dot::util {

JournalWriter::JournalWriter(std::string path, bool preserve_existing,
                             std::size_t checkpoint_block)
    : path_(std::move(path)),
      block_(checkpoint_block == 0 ? 1 : checkpoint_block) {
  if (preserve_existing) {
    JournalContents existing = read_journal(path_);
    records_ = std::move(existing.lines);
    // A dropped truncated tail means the on-disk file still carries the
    // partial record; rewrite immediately so the file is well-formed
    // from here on.
    if (existing.truncated_tail) checkpoint();
  }
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (...) {
    // Destructor flush is best-effort; checked shutdown goes via close().
  }
}

void JournalWriter::append(const std::string& json_record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(json_record);
  if (++unflushed_ >= block_) checkpoint_locked();
}

void JournalWriter::checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  checkpoint_locked();
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (unflushed_ > 0 || records_.empty()) checkpoint_locked();
}

std::size_t JournalWriter::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void JournalWriter::checkpoint_locked() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw InvalidInputError("journal: cannot open " + tmp + " for writing");
    for (const auto& record : records_) out << record << '\n';
    out.flush();
    if (!out) throw InvalidInputError("journal: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw InvalidInputError("journal: cannot rename " + tmp + " over " +
                            path_);
  unflushed_ = 0;
}

JournalContents read_journal(const std::string& path) {
  JournalContents contents;
  std::ifstream in(path);
  if (!in) return contents;  // missing journal = nothing completed yet

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    lines.push_back(line);
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      contents.records.push_back(parse_json(lines[i]));
      contents.lines.push_back(lines[i]);
    } catch (const InvalidInputError& e) {
      if (i + 1 == lines.size()) {
        // Incomplete final record: the write it belonged to never
        // finished. Completed work before it is intact.
        contents.truncated_tail = true;
        return contents;
      }
      throw InvalidInputError("journal: corrupt record " +
                              std::to_string(i + 1) + " in " + path + ": " +
                              e.what());
    }
  }
  return contents;
}

}  // namespace dot::util
