#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace dot::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: NODELAY failing (e.g. on a socketpair in tests) only
  // costs latency, never correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in parse_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved =
      host.empty() || host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
    throw IoError("bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------
// TcpSocket.

TcpSocket::TcpSocket(int fd) : fd_(fd) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect(const std::string& host, std::uint16_t port,
                             double timeout_ms) {
  const sockaddr_in addr = parse_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  TcpSocket sock(fd);  // owns + sets nonblocking before connect

  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0)
    return sock;
  if (errno != EINPROGRESS)
    throw_errno("connect to " + host + ":" + std::to_string(port));

  // Nonblocking connect: poll for writability, then read SO_ERROR.
  const Deadline deadline(timeout_ms);
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const double wait =
        deadline.armed() ? deadline.remaining_ms() : 100.0;
    const int rc = ::poll(&pfd, 1, static_cast<int>(wait) + 1);
    if (rc < 0 && errno != EINTR) throw_errno("poll(connect)");
    if (rc > 0) break;
    if (deadline.expired())
      throw IoError("connect to " + host + ":" + std::to_string(port) +
                    " timed out");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
    throw_errno("getsockopt(SO_ERROR)");
  if (err != 0)
    throw IoError("connect to " + host + ":" + std::to_string(port) + ": " +
                  std::strerror(err));
  return sock;
}

ReadStatus TcpSocket::read_some(void* buf, std::size_t n, std::size_t& got) {
  got = 0;
  const ssize_t rc = ::recv(fd_, buf, n, 0);
  if (rc > 0) {
    got = static_cast<std::size_t>(rc);
    return ReadStatus::kData;
  }
  if (rc == 0) return ReadStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return ReadStatus::kWouldBlock;
  if (errno == ECONNRESET || errno == EPIPE) return ReadStatus::kClosed;
  throw_errno("recv");
}

bool TcpSocket::write_all(const void* data, std::size_t n,
                          double timeout_ms) {
  const char* p = static_cast<const char*>(data);
  const Deadline deadline(timeout_ms);
  while (n > 0) {
    const ssize_t rc = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (rc > 0) {
      p += rc;
      n -= static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    if (deadline.expired()) return false;
    pollfd pfd{fd_, POLLOUT, 0};
    const double wait = deadline.armed() ? deadline.remaining_ms() : 100.0;
    if (::poll(&pfd, 1, static_cast<int>(wait) + 1) < 0 && errno != EINTR)
      throw_errno("poll(send)");
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) return false;
  }
  return true;
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// TcpListener.

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port, bool any_interface) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(listen)");
  TcpListener listener;
  listener.fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(any_interface ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0)
    throw_errno("bind port " + std::to_string(port));
  if (::listen(fd, 64) < 0) throw_errno("listen");
  set_nonblocking(fd);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpSocket TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd >= 0) return TcpSocket(fd);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ECONNABORTED)
    return TcpSocket();
  throw_errno("accept");
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// poll.

int poll_readable(std::vector<PollItem>& items, double timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(items.size());
  for (const PollItem& item : items)
    pfds.push_back(pollfd{item.fd, POLLIN, 0});
  const int timeout =
      timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms);
  const int rc = ::poll(pfds.data(), pfds.size(), timeout);
  if (rc < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll");
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (pfds[i].revents & POLLIN) != 0;
    items[i].hangup =
        (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return rc;
}

}  // namespace dot::util
