#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dot::util {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SignatureSpace::add_dimension(std::string name, Band band) {
  names_.push_back(std::move(name));
  bands_.push_back(band);
}

std::size_t SignatureSpace::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  return npos;
}

bool SignatureSpace::inside(const std::vector<double>& response) const {
  if (response.size() != bands_.size())
    throw std::invalid_argument("SignatureSpace::inside: dimension mismatch");
  for (std::size_t i = 0; i < bands_.size(); ++i)
    if (!bands_[i].contains(response[i])) return false;
  return true;
}

std::vector<std::size_t> SignatureSpace::violations(
    const std::vector<double>& response) const {
  if (response.size() != bands_.size())
    throw std::invalid_argument(
        "SignatureSpace::violations: dimension mismatch");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < bands_.size(); ++i)
    if (!bands_[i].contains(response[i])) out.push_back(i);
  return out;
}

void EnvelopeBuilder::add_sample(const std::vector<double>& response) {
  if (stats_.empty()) {
    stats_.resize(response.size());
  } else if (stats_.size() != response.size()) {
    throw std::invalid_argument("EnvelopeBuilder: inconsistent sample size");
  }
  for (std::size_t i = 0; i < response.size(); ++i) stats_[i].add(response[i]);
}

SignatureSpace EnvelopeBuilder::build(
    const std::vector<std::string>& names) const {
  if (names.size() != stats_.size())
    throw std::invalid_argument("EnvelopeBuilder::build: name count mismatch");
  SignatureSpace space;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const double mean = stats_[i].mean();
    double half = k_sigma_ * stats_[i].stddev();
    half = std::max(half, min_width_ / 2.0);
    space.add_dimension(names[i], Band{mean - half, mean + half});
  }
  return space;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: bad range or bin count");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

}  // namespace dot::util
