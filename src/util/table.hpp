// Plain-text table rendering used by the benchmark harnesses to print
// the paper's tables (Table 1..3) and figure data (Fig 3..5) in a
// readable fixed-width layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dot::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision so rows line up.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Formats a double with the given number of decimals (locale-free).
std::string fmt(double value, int decimals = 2);

/// Formats a ratio as a percentage string, e.g. 0.933 -> "93.3".
std::string pct(double ratio, int decimals = 1);

/// Formats an SI-scaled quantity, e.g. (3.2e-6, "s") -> "3.20 us".
std::string si(double value, const std::string& unit, int decimals = 2);

}  // namespace dot::util
