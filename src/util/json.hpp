// Minimal JSON writer (objects, arrays, strings, numbers, booleans)
// used to export campaign results for downstream tooling. Write-only by
// design: the library consumes netlists and layouts, not JSON.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace dot::util {

/// Streaming JSON writer with correct escaping and comma placement.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("comparator");
///   w.key("faults"); w.begin_array(); w.value(1); w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::size_t number);
  void value(int number);
  void value(bool flag);

  std::string str() const { return os_.str(); }

 private:
  void comma();
  void raw(const std::string& text);

  std::ostringstream os_;
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

/// Escapes a string per JSON rules (quotes included).
std::string json_quote(const std::string& text);

}  // namespace dot::util
