// Minimal JSON writer (objects, arrays, strings, numbers, booleans)
// used to export campaign results for downstream tooling, plus the
// matching recursive-descent parser required by the campaign journal
// (checkpoint/resume replay and shard merging read their own output;
// the library still consumes netlists and layouts, not arbitrary JSON).
#pragma once

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dot::util {

/// Streaming JSON writer with correct escaping and comma placement.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("comparator");
///   w.key("faults"); w.begin_array(); w.value(1); w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::size_t number);
  void value(int number);
  void value(bool flag);

  std::string str() const { return os_.str(); }

 private:
  void comma();
  void raw(const std::string& text);

  std::ostringstream os_;
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

/// Escapes a string per JSON rules (quotes included).
std::string json_quote(const std::string& text);

/// Parsed JSON document node. Object member order is preserved (the
/// journal diff tools rely on deterministic re-serialization).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw InvalidInputError on a kind mismatch so
  /// journal readers surface corrupt records with a real message.
  bool as_bool() const;
  double as_number() const;
  std::size_t as_size() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const { return array_.size(); }
  const JsonValue& operator[](std::size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object access: find() returns null when absent, get() throws.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the full text must be consumed apart from
/// trailing whitespace). Throws InvalidInputError with a byte offset on
/// malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace dot::util
