#include "util/shutdown.hpp"

#include <csignal>

namespace dot::util {

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_shutdown_signal(int sig) {
  g_signal = sig;
  // One signal asks nicely; a second one must work even if the campaign
  // never reaches a poll point, so fall back to the default disposition.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void arm_shutdown_handler() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool shutdown_requested() { return g_signal != 0; }

int shutdown_signal() { return static_cast<int>(g_signal); }

int shutdown_exit_status() {
  return g_signal == 0 ? 0 : 128 + static_cast<int>(g_signal);
}

void reset_shutdown_for_tests() { g_signal = 0; }

}  // namespace dot::util
