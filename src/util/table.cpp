#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dot::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-");
    os << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.str();
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pct(double ratio, int decimals) {
  return fmt(100.0 * ratio, decimals);
}

std::string si(double value, const std::string& unit, int decimals) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  const double magnitude = std::fabs(value);
  for (const auto& prefix : kPrefixes) {
    if (magnitude >= prefix.scale || prefix.scale == 1e-15) {
      return fmt(value / prefix.scale, decimals) + " " + prefix.symbol + unit;
    }
  }
  return fmt(value, decimals) + " " + unit;
}

}  // namespace dot::util
