// Crash-safe result journaling for long campaigns: an append-only JSONL
// file (one JSON record per line) whose on-disk image is only ever
// replaced atomically.
//
// Write protocol: records accumulate in memory and every
// `checkpoint_block` appends the full record list is written to
// `<path>.tmp` and renamed over `<path>`. rename(2) on a POSIX
// filesystem is atomic, so a reader (or a resumed campaign) always sees
// either the previous checkpoint or the new one -- never a torn file.
// A crash between checkpoints loses at most the records appended since
// the last checkpoint; those are deterministic re-computations, so the
// resume path simply redoes them.
//
// Read protocol: a well-formed journal is a sequence of parseable JSON
// lines. The final line may be incomplete (a crash mid-write of a
// non-checkpointed append by a cooperating external writer, or a
// truncated copy); it is dropped and reported via `truncated_tail`.
// A malformed record anywhere *before* the final line means the file
// was corrupted (bit rot, concurrent writers, manual edits) and is
// rejected with InvalidInputError -- resuming from it would silently
// drop completed work.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dot::util {

/// Thread-safe journal writer. append() may be called concurrently from
/// campaign workers; checkpoints serialize internally.
class JournalWriter {
 public:
  /// Opens the journal. With `preserve_existing`, valid records already
  /// in the file (a resumed run) are loaded and kept byte-identical in
  /// every subsequent checkpoint; otherwise the journal starts empty
  /// (the file is replaced at the first checkpoint).
  explicit JournalWriter(std::string path, bool preserve_existing = false,
                         std::size_t checkpoint_block = 16);

  /// Flushes any unsaved records, ignoring flush errors (destructors
  /// must not throw); call close() for checked shutdown.
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record (a complete JSON document, no newline). A
  /// checkpoint is taken automatically every `checkpoint_block`
  /// appends.
  void append(const std::string& json_record);

  /// Writes all records to `<path>.tmp` and atomically renames it over
  /// `<path>`. Throws InvalidInputError (with the path) when the
  /// filesystem rejects the write.
  void checkpoint();

  /// Final checkpoint; idempotent.
  void close();

  const std::string& path() const { return path_; }
  std::size_t record_count() const;

 private:
  void checkpoint_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::vector<std::string> records_;
  std::size_t unflushed_ = 0;
  std::size_t block_ = 16;
};

struct JournalContents {
  std::vector<JsonValue> records;
  /// Raw record lines, byte-identical to the file (minus the dropped
  /// tail); lets a resumed writer preserve existing bytes exactly.
  std::vector<std::string> lines;
  bool truncated_tail = false;  ///< Final record was incomplete (dropped).
};

/// Reads a JSONL journal. A missing file yields an empty result; an
/// incomplete final record is tolerated (see header comment); malformed
/// interior records throw InvalidInputError.
JournalContents read_journal(const std::string& path);

}  // namespace dot::util
