// Shared parallel execution layer: a fixed-size thread pool plus
// chunked parallel_for / order-preserving parallel_map built on top.
//
// Design rules that make the campaigns deterministic and deadlock-free:
//
//  * Work is identified by index, never by arrival order. parallel_map
//    writes result i into slot i, so the output is bit-identical no
//    matter how chunks are scheduled or how many threads run.
//  * The calling thread always participates in the loop it issued.
//    Helpers from the pool join in if they are free; if every pool
//    worker is busy (e.g. the five macro campaigns already occupy the
//    pool and each issues an inner loop), the caller simply drains its
//    own chunks inline. Nested parallel sections therefore cannot
//    deadlock and need no special casing at the call site.
//  * Two error modes. Default (first-error): the first exception thrown
//    by any chunk is captured, remaining chunks are skipped, and a
//    ParallelError naming the failing chunk (plus the caller's context
//    label) is rethrown on the calling thread once the loop has
//    quiesced. Collect mode (ParallelOptions::errors): every chunk
//    runs regardless of other chunks' failures; failures are gathered
//    per chunk, sorted by chunk index (deterministic at any thread
//    count), and nothing is thrown -- the campaign resilience layer
//    uses this so independent fault-class failures never wipe out each
//    other's completed work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dot::util {

/// Fixed-size worker pool. `thread_count()` is the configured
/// parallelism including the calling thread, so a pool configured for
/// N threads spawns N-1 workers; a pool of 1 spawns none and every
/// parallel_for runs inline on the caller.
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (helper workers + the calling thread).
  unsigned thread_count() const { return parallelism_; }

  /// Enqueues a job; pool workers pick it up in FIFO order. Jobs must
  /// not block waiting for later-enqueued jobs (parallel_for obeys
  /// this: its helpers never wait, only the issuing caller does).
  void submit(std::function<void()> job);

  /// The process-wide pool used by parallel_for / parallel_map.
  /// Created on first use with hardware_concurrency() threads.
  static ThreadPool& global();

  /// Replaces the global pool (the --threads=N knob). Must not be
  /// called while parallel work is in flight. threads == 0 restores
  /// the hardware default.
  static void set_global_thread_count(unsigned threads);
  static unsigned global_thread_count();

 private:
  void worker_loop();

  unsigned parallelism_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// One failed chunk of a parallel loop run in collect mode.
struct ChunkError {
  std::size_t chunk = 0;  ///< Chunk ordinal within the loop.
  std::size_t begin = 0;  ///< First index of the failed chunk.
  std::size_t end = 0;    ///< One past the last index.
  std::string message;    ///< what() of the captured exception.
  std::exception_ptr error;
};

struct ParallelOptions {
  /// Chunk size; 0 picks a size targeting ~8 chunks per thread.
  std::size_t chunk = 0;
  /// Label attached to error reports ("comparator classes", ...), so a
  /// failure escaping a deeply nested loop still names its campaign.
  const char* context = nullptr;
  /// Collect mode: when non-null, chunk failures are appended here
  /// (sorted by chunk index) instead of aborting the loop; no exception
  /// propagates. When null, first-error mode rethrows a ParallelError.
  std::vector<ChunkError>* errors = nullptr;
};

/// Runs body(lo, hi) over [0, count) split into chunks. Blocks until
/// the loop quiesces; error handling per ParallelOptions.
void parallel_chunks(std::size_t count, const ParallelOptions& options,
                     const std::function<void(std::size_t, std::size_t)>& body);

/// Back-compat shorthand: first-error mode with an explicit chunk size.
void parallel_chunks(std::size_t count, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body);

/// Runs body(i) for every i in [0, count). body must be safe to call
/// concurrently from multiple threads.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Same, with explicit error handling / context label. In collect mode
/// each failed chunk is reported once (chunk = item range, since the
/// loop is chunked internally).
void parallel_for(std::size_t count, const ParallelOptions& options,
                  const std::function<void(std::size_t)>& body);

/// Maps fn over [0, count) preserving index order: result[i] == fn(i)
/// bit-for-bit regardless of thread count. The result type must be
/// default-constructible (slots are pre-allocated, then filled).
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  parallel_for(count, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace dot::util
