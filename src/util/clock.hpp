// Monotonic wall-clock helpers for the dispatch liveness layer.
//
// Every deadline in the dispatcher/worker pair is computed against the
// steady clock: heartbeat expiry must keep working across NTP steps and
// suspend/resume, and a re-issued shard must never be triggered by the
// system clock jumping backwards. The double-milliseconds unit matches
// the resilience layer's timeout knobs.
#pragma once

#include <chrono>

namespace dot::util {

/// Milliseconds on the monotonic (steady) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A monotonic deadline: armed at construction, queried cheaply.
/// timeout_ms <= 0 disarms it (never expires), mirroring the campaign
/// budget convention of "0 = unlimited".
class Deadline {
 public:
  explicit Deadline(double timeout_ms, double now = mono_ms())
      : expiry_(timeout_ms > 0.0 ? now + timeout_ms : 0.0) {}

  bool armed() const { return expiry_ != 0.0; }
  bool expired(double now = mono_ms()) const {
    return armed() && now >= expiry_;
  }
  /// Milliseconds until expiry (clamped at 0); -1 when disarmed.
  double remaining_ms(double now = mono_ms()) const {
    if (!armed()) return -1.0;
    return expiry_ > now ? expiry_ - now : 0.0;
  }

 private:
  double expiry_ = 0.0;
};

}  // namespace dot::util
