// Deterministic pseudo-random number generation for all Monte-Carlo
// stages (defect sprinkling, process-spread sampling, stimulus jitter).
//
// Every stochastic component of the library takes an explicit seed so
// experiments are exactly reproducible; nothing reads global entropy.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dot::util {

/// xoshiro256** 1.0 by Blackman & Vigna: small, fast, and high quality.
/// Used instead of std::mt19937 so that streams are bit-identical across
/// standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box-Muller (cached spare deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Draws an index according to the (unnormalized) weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted(const std::vector<double>& weights);

  /// Power-law sample with density ~ 1/x^exponent on [x_min, x_max].
  /// The classic spot-defect size distribution uses exponent = 3.
  double power_law(double x_min, double x_max, double exponent);

  /// Derives an independent child stream; used to give each macro /
  /// experiment its own stream from one master seed.
  Rng fork();

  /// Counter-based stream derivation: returns the child stream for
  /// `stream_id` WITHOUT advancing this generator. The same (master
  /// state, stream_id) pair always yields the same child, so work item
  /// i can draw from split(i) on any thread and produce bit-identical
  /// results regardless of thread count or execution order.
  Rng split(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace dot::util
