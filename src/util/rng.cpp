#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dot::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::weighted: no positive weight");
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

double Rng::power_law(double x_min, double x_max, double exponent) {
  if (!(x_min > 0.0) || !(x_max >= x_min))
    throw std::invalid_argument("Rng::power_law: bad range");
  const double u = uniform();
  if (exponent == 1.0) {
    // Density ~ 1/x: log-uniform.
    return x_min * std::exp(u * std::log(x_max / x_min));
  }
  const double one_minus = 1.0 - exponent;
  const double a = std::pow(x_min, one_minus);
  const double b = std::pow(x_max, one_minus);
  return std::pow(a + u * (b - a), 1.0 / one_minus);
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Fold the full master state and the stream id through SplitMix64.
  // Reading (not advancing) the state keeps split() const and makes
  // child streams a pure function of (master seed, stream_id).
  std::uint64_t acc = stream_id;
  for (std::uint64_t word : state_) {
    acc ^= splitmix64(word);  // splitmix64 advances its local copy only
  }
  std::uint64_t mix = acc + 0x9e3779b97f4a7c15ull * (stream_id + 1);
  return Rng(splitmix64(mix));
}

Rng Rng::fork() {
  Rng child(0);
  // Child state drawn from this stream keeps the two streams independent.
  for (auto& word : child.state_) word = (*this)();
  // Avoid the (astronomically unlikely) all-zero state.
  bool all_zero = true;
  for (auto word : child.state_) all_zero = all_zero && word == 0;
  if (all_zero) child.state_[0] = 1;
  return child;
}

}  // namespace dot::util
