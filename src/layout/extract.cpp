#include "layout/extract.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace dot::layout {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t i) {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];
    i = parent_[i];
  }
  return i;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

namespace {

bool cut_connects(Layer cut, Layer conductor) {
  if (cut == Layer::kContact)
    return conductor == Layer::kMetal1 || conductor == Layer::kPoly ||
           conductor == Layer::kActive;
  if (cut == Layer::kVia1)
    return conductor == Layer::kMetal1 || conductor == Layer::kMetal2;
  return false;
}

/// Unions shapes that are electrically continuous, honouring a removal
/// mask (removed shapes connect to nothing).
UnionFind build_union(const CellLayout& cell,
                      const std::vector<char>& removed) {
  const auto& shapes = cell.shapes();
  UnionFind uf(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (removed[i]) continue;
    const auto& a = shapes[i];
    for (std::size_t j = i + 1; j < shapes.size(); ++j) {
      if (removed[j]) continue;
      const auto& b = shapes[j];
      if (!a.rect.intersects(b.rect)) continue;
      const bool same_layer_conductors =
          a.layer == b.layer && is_conducting(a.layer);
      const bool cut_pair =
          (is_cut(a.layer) && cut_connects(a.layer, b.layer)) ||
          (is_cut(b.layer) && cut_connects(b.layer, a.layer));
      if (same_layer_conductors || cut_pair) uf.unite(i, j);
    }
  }
  return uf;
}

}  // namespace

ExtractionResult extract_connectivity(const CellLayout& cell) {
  const auto& shapes = cell.shapes();
  std::vector<char> removed(shapes.size(), 0);
  UnionFind uf = build_union(cell, removed);

  ExtractionResult result;
  result.component_of_shape.assign(shapes.size(), -1);
  std::map<std::size_t, int> root_to_component;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (!is_conducting(shapes[i].layer) && !is_cut(shapes[i].layer)) continue;
    const std::size_t root = uf.find(i);
    auto [it, inserted] =
        root_to_component.emplace(root, result.component_count);
    if (inserted) ++result.component_count;
    result.component_of_shape[i] = it->second;
  }
  return result;
}

std::vector<std::string> verify_net_labels(const CellLayout& cell) {
  const auto extraction = extract_connectivity(cell);
  const auto& shapes = cell.shapes();
  std::vector<std::string> issues;

  // Net label -> set of components; component -> set of labels.
  std::map<std::string, std::set<int>> components_of_label;
  std::map<int, std::set<std::string>> labels_of_component;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const int comp = extraction.component_of_shape[i];
    if (comp < 0 || shapes[i].net.empty()) continue;
    components_of_label[shapes[i].net].insert(comp);
    labels_of_component[comp].insert(shapes[i].net);
  }
  for (const auto& [label, comps] : components_of_label) {
    if (comps.size() > 1)
      issues.push_back("net '" + label + "' is split into " +
                       std::to_string(comps.size()) + " components");
  }
  for (const auto& [comp, labels] : labels_of_component) {
    if (labels.size() > 1) {
      std::string joined;
      for (const auto& l : labels) joined += (joined.empty() ? "" : ", ") + l;
      issues.push_back("component " + std::to_string(comp) +
                       " carries several labels: " + joined);
    }
  }
  return issues;
}

std::vector<std::vector<std::size_t>> tap_groups_after_removal(
    const CellLayout& cell, const std::string& net,
    const std::vector<std::size_t>& removed_shapes) {
  const auto& shapes = cell.shapes();
  std::vector<char> removed(shapes.size(), 0);
  for (std::size_t idx : removed_shapes) {
    if (idx >= shapes.size())
      throw util::InvalidInputError("tap_groups_after_removal: bad index");
    removed[idx] = 1;
  }
  UnionFind uf = build_union(cell, removed);

  // Collect the taps of this net and locate a supporting shape for each.
  std::vector<std::size_t> tap_indices;
  for (std::size_t t = 0; t < cell.taps().size(); ++t)
    if (cell.taps()[t].net == net) tap_indices.push_back(t);

  std::map<long, std::vector<std::size_t>> groups;  // root (or -1-t) -> taps
  for (std::size_t t : tap_indices) {
    const auto& tap = cell.taps()[t];
    long key = -1 - static_cast<long>(t);  // default: isolated tap
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      if (removed[i] || shapes[i].net != net) continue;
      if (shapes[i].layer != tap.layer) continue;
      if (shapes[i].rect.contains(tap.at)) {
        key = static_cast<long>(uf.find(i));
        break;
      }
    }
    groups[key].push_back(t);
  }

  std::vector<std::vector<std::size_t>> out;
  out.reserve(groups.size());
  for (auto& [key, taps] : groups) out.push_back(std::move(taps));
  return out;
}

}  // namespace dot::layout
