// 2-D geometry primitives for layout and defect analysis. Coordinates
// are in micrometres.
#pragma once

#include <string>

namespace dot::layout {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned rectangle, normalized so lo <= hi on both axes.
struct Rect {
  double x_lo = 0.0;
  double y_lo = 0.0;
  double x_hi = 0.0;
  double y_hi = 0.0;

  static Rect spanning(double x0, double y0, double x1, double y1);
  /// Square of side `size` centred on `p` (spot-defect footprint).
  static Rect square(Point p, double size);

  double width() const { return x_hi - x_lo; }
  double height() const { return y_hi - y_lo; }
  double area() const { return width() * height(); }
  Point center() const { return {(x_lo + x_hi) / 2.0, (y_lo + y_hi) / 2.0}; }
  bool empty() const { return x_hi <= x_lo || y_hi <= y_lo; }

  bool contains(Point p) const;
  /// Open-interval overlap: touching edges do NOT count as intersecting
  /// (a defect must genuinely bridge material, not graze it).
  bool intersects(const Rect& other) const;
  /// Clipped intersection; empty() when disjoint.
  Rect intersection(const Rect& other) const;
  /// Smallest rectangle containing both.
  Rect united(const Rect& other) const;
  /// Rectangle grown by `margin` on all sides.
  Rect expanded(double margin) const;

  std::string str() const;
};

}  // namespace dot::layout
