// Procedural layout synthesis: builds a plausible row-based cell layout
// (rails, device rows, a central metal1 routing channel, metal2 risers)
// from a macro netlist.
//
// The paper analyzed proprietary Philips layouts; we reproduce the
// *structural* properties that drive its results instead:
//  - nets routed as long parallel trunks, so neighbouring tracks short
//    with a likelihood proportional to shared run length;
//  - explicit track ordering hints, so the DfT experiment "separate two
//    bias lines carrying nearly identical signals" is expressible;
//  - contacts, vias and gate regions in realistic numbers, so pinhole
//    and extra-contact statistics have sites to land on.
#pragma once

#include <string>
#include <vector>

#include "layout/cell.hpp"
#include "layout/layers.hpp"
#include "spice/netlist.hpp"

namespace dot::layout {

struct SynthOptions {
  TechRules rules;
  /// Net treated as the positive supply rail (top of the cell).
  std::string vdd_net = "vdd";
  /// Nets exposed at the cell edge; their trunks span the full width.
  std::vector<std::string> pins;
  /// Nets listed here get the first routing-channel tracks, adjacent to
  /// each other in exactly this order. Remaining nets follow in order of
  /// first use. This is the knob the bias-line DfT measure turns.
  std::vector<std::string> track_order;
  /// Horizontal placement slot per device.
  double slot_width = 20.0;
};

/// Builds the layout for every physical device in the netlist (MOSFETs,
/// resistors, capacitors). Sources, VCVS and switches are considered
/// test-bench elements and are skipped. Throws InvalidInputError if a
/// net label check fails afterwards.
CellLayout synthesize_layout(const spice::Netlist& netlist,
                             const std::string& cell_name,
                             const SynthOptions& options);

}  // namespace dot::layout
