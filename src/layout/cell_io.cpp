#include "layout/cell_io.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace dot::layout {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

Layer layer_by_name(const std::string& name, int line_no) {
  for (int i = 0; i < kLayerCount; ++i) {
    const auto layer = static_cast<Layer>(i);
    if (layer_name(layer) == name) return layer;
  }
  throw util::InvalidInputError("cell text line " + std::to_string(line_no) +
                                ": unknown layer '" + name + "'");
}

}  // namespace

std::string to_text(const CellLayout& cell) {
  std::ostringstream os;
  os << "cell " << cell.name() << '\n';
  for (const auto& shape : cell.shapes()) {
    os << "shape " << layer_name(shape.layer) << ' ' << num(shape.rect.x_lo)
       << ' ' << num(shape.rect.y_lo) << ' ' << num(shape.rect.x_hi) << ' '
       << num(shape.rect.y_hi);
    if (!shape.net.empty()) os << ' ' << shape.net;
    os << '\n';
  }
  for (const auto& well : cell.nwells()) {
    os << "nwell " << num(well.x_lo) << ' ' << num(well.y_lo) << ' '
       << num(well.x_hi) << ' ' << num(well.y_hi) << '\n';
  }
  for (const auto& tap : cell.taps()) {
    os << "tap " << tap.net << ' ' << tap.device << ' ' << tap.terminal
       << ' ' << num(tap.at.x) << ' ' << num(tap.at.y) << ' '
       << layer_name(tap.layer) << '\n';
  }
  for (const auto& mos : cell.mos_regions()) {
    os << "mos " << mos.device << ' ' << num(mos.channel.x_lo) << ' '
       << num(mos.channel.y_lo) << ' ' << num(mos.channel.x_hi) << ' '
       << num(mos.channel.y_hi) << ' ' << mos.gate_net << ' '
       << mos.source_net << ' ' << mos.drain_net << ' '
       << (mos.in_nwell ? 1 : 0) << '\n';
  }
  return os.str();
}

CellLayout parse_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  std::string cell_name = "unnamed";
  std::vector<std::vector<std::string>> records;
  std::vector<int> record_lines;

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;
    if (tokens[0] == "cell") {
      if (tokens.size() != 2)
        throw util::InvalidInputError("cell text line " +
                                      std::to_string(line_no) +
                                      ": cell needs a name");
      cell_name = tokens[1];
      continue;
    }
    records.push_back(std::move(tokens));
    record_lines.push_back(line_no);
  }

  CellLayout cell(cell_name);
  for (std::size_t r = 0; r < records.size(); ++r) {
    const auto& t = records[r];
    const int ln = record_lines[r];
    auto need = [&](std::size_t n) {
      if (t.size() < n)
        throw util::InvalidInputError("cell text line " +
                                      std::to_string(ln) +
                                      ": too few fields for " + t[0]);
    };
    auto number = [&](const std::string& token) {
      try {
        return std::stod(token);
      } catch (...) {
        throw util::InvalidInputError("cell text line " +
                                      std::to_string(ln) + ": bad number '" +
                                      token + "'");
      }
    };
    if (t[0] == "shape") {
      need(6);
      Shape shape;
      shape.layer = layer_by_name(t[1], ln);
      shape.rect = Rect{number(t[2]), number(t[3]), number(t[4]),
                        number(t[5])};
      if (t.size() > 6) shape.net = t[6];
      cell.add_shape(std::move(shape));
    } else if (t[0] == "nwell") {
      need(5);
      cell.add_nwell(
          Rect{number(t[1]), number(t[2]), number(t[3]), number(t[4])});
    } else if (t[0] == "tap") {
      need(7);
      Tap tap;
      tap.net = t[1];
      tap.device = t[2];
      tap.terminal = static_cast<int>(number(t[3]));
      tap.at = {number(t[4]), number(t[5])};
      tap.layer = layer_by_name(t[6], ln);
      cell.add_tap(std::move(tap));
    } else if (t[0] == "mos") {
      need(10);
      MosRegion mos;
      mos.device = t[1];
      mos.channel = Rect{number(t[2]), number(t[3]), number(t[4]),
                         number(t[5])};
      mos.gate_net = t[6];
      mos.source_net = t[7];
      mos.drain_net = t[8];
      mos.in_nwell = number(t[9]) != 0.0;
      cell.add_mos_region(std::move(mos));
    } else {
      throw util::InvalidInputError("cell text line " + std::to_string(ln) +
                                    ": unknown record '" + t[0] + "'");
    }
  }
  return cell;
}

}  // namespace dot::layout
