#include "layout/export_svg.hpp"

#include <array>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dot::layout {
namespace {

struct LayerStyle {
  const char* fill;
  double opacity;
};

/// Classic layout-editor palette: wells grey, active green, poly red,
/// cuts black, metal1 blue, metal2 magenta.
LayerStyle style_of(Layer layer) {
  switch (layer) {
    case Layer::kNWell:
      return {"#bbbbbb", 0.35};
    case Layer::kActive:
      return {"#2e8b57", 0.8};
    case Layer::kPoly:
      return {"#cc2222", 0.8};
    case Layer::kContact:
      return {"#111111", 0.95};
    case Layer::kMetal1:
      return {"#2255cc", 0.55};
    case Layer::kVia1:
      return {"#333333", 0.95};
    case Layer::kMetal2:
      return {"#bb44bb", 0.5};
  }
  return {"#000000", 1.0};
}

}  // namespace

std::string to_svg(const CellLayout& cell, const SvgOptions& options) {
  const Rect box = cell.bounding_box().expanded(2.0);
  const double s = options.scale;
  const double width = box.width() * s;
  const double height = box.height() * s;
  // SVG y grows downward; layout y grows upward -> flip.
  auto x_of = [&](double x) { return (x - box.x_lo) * s; };
  auto y_of = [&](double y) { return (box.y_hi - y) * s; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f4\"/>\n";

  auto rect_tag = [&](const Rect& r, const char* fill, double opacity,
                      const char* stroke) {
    os << "<rect x=\"" << x_of(r.x_lo) << "\" y=\"" << y_of(r.y_hi)
       << "\" width=\"" << r.width() * s << "\" height=\"" << r.height() * s
       << "\" fill=\"" << fill << "\" fill-opacity=\"" << opacity << '"';
    if (stroke != nullptr) os << " stroke=\"" << stroke << "\"";
    os << "/>\n";
  };

  for (const Rect& well : cell.nwells()) {
    const auto st = style_of(Layer::kNWell);
    rect_tag(well, st.fill, st.opacity, "#888888");
  }
  // Draw in layer order so cuts end up on top.
  static constexpr std::array<Layer, 6> kOrder = {
      Layer::kActive, Layer::kPoly, Layer::kMetal1,
      Layer::kMetal2, Layer::kContact, Layer::kVia1};
  for (Layer layer : kOrder) {
    const auto st = style_of(layer);
    for (const auto& shape : cell.shapes()) {
      if (shape.layer != layer) continue;
      rect_tag(shape.rect, st.fill, st.opacity, nullptr);
      if (options.draw_net_labels && shape.rect.width() * s > 60.0 &&
          !shape.net.empty()) {
        os << "<text x=\"" << x_of(shape.rect.x_lo) + 3 << "\" y=\""
           << y_of(shape.rect.center().y) + 3 << "\" font-size=\""
           << s * 1.1 << "\" fill=\"#222\">" << shape.net << "</text>\n";
      }
    }
  }
  if (options.draw_taps) {
    for (const auto& tap : cell.taps()) {
      os << "<circle cx=\"" << x_of(tap.at.x) << "\" cy=\"" << y_of(tap.at.y)
         << "\" r=\"" << s * 0.3
         << "\" fill=\"#ffdd00\" stroke=\"#884400\"/>\n";
    }
  }
  for (const auto& marker : options.markers) {
    rect_tag(marker.rect, marker.color.c_str(), 0.45, marker.color.c_str());
    if (!marker.label.empty()) {
      os << "<text x=\"" << x_of(marker.rect.x_lo) << "\" y=\""
         << y_of(marker.rect.y_hi) - 2 << "\" font-size=\"" << s * 1.2
         << "\" fill=\"" << marker.color << "\">" << marker.label
         << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

void write_svg(const CellLayout& cell, const std::string& path,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw util::InvalidInputError("write_svg: cannot open " + path);
  out << to_svg(cell, options);
  // An ofstream buffers aggressively: a full disk or yanked mount often
  // only surfaces at flush time, so force it before checking state.
  out.flush();
  if (!out) throw util::InvalidInputError("write_svg: write failed " + path);
}

}  // namespace dot::layout
