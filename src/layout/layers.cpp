#include "layout/layers.hpp"

#include <array>

namespace dot::layout {

const std::string& layer_name(Layer layer) {
  static const std::array<std::string, kLayerCount> names = {
      "nwell", "active", "poly", "contact", "metal1", "via1", "metal2"};
  return names[static_cast<std::size_t>(layer)];
}

bool is_conducting(Layer layer) {
  switch (layer) {
    case Layer::kActive:
    case Layer::kPoly:
    case Layer::kMetal1:
    case Layer::kMetal2:
      return true;
    default:
      return false;
  }
}

bool is_cut(Layer layer) {
  return layer == Layer::kContact || layer == Layer::kVia1;
}

}  // namespace dot::layout
