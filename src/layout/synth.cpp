#include "layout/synth.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "layout/extract.hpp"
#include "util/error.hpp"

namespace dot::layout {
namespace {

using spice::Capacitor;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

// Horizontal offsets of terminal pads inside a placement slot. Every
// riser is a plain metal2 vertical at its pad's x, so pads across the
// two rows must occupy disjoint x bands; the PMOS row is shifted by
// kPmosOffset to interleave with the NMOS/passive row below.
// The 2.4 um pad pitch keeps both the metal1 pads and the metal2
// risers (1.2 um wide) at or above the 1.2 um spacing rule -- the
// synthesized cells pass their own DRC (layout/drc.hpp).
constexpr double kSourceOff = -2.4;
constexpr double kGateOff = 0.0;
constexpr double kDrainOff = 2.4;
constexpr double kBulkOff = 4.8;
constexpr double kResAOff = -2.4;
constexpr double kResBOff = 2.4;
constexpr double kCapAOff = -2.4;
constexpr double kCapBOff = 0.5;
constexpr double kPmosOffset = 10.0;
constexpr double kMargin = 3.0;

struct DeviceSlot {
  const spice::Device* device = nullptr;
  double xc = 0.0;   ///< Slot centre (already including any row offset).
  bool top_row = false;
};

struct Placement {
  std::vector<DeviceSlot> bottom;  ///< NMOS + resistors + capacitors.
  std::vector<DeviceSlot> top;     ///< PMOS.
  double cell_width = 0.0;
};

/// Terminal pad x offsets for one device, in Netlist terminal order
/// (bulk may be dropped later when it taps a rail).
std::vector<double> pad_offsets(const spice::Device& device) {
  if (std::holds_alternative<Mosfet>(device))
    return {kDrainOff, kGateOff, kSourceOff, kBulkOff};
  if (std::holds_alternative<Resistor>(device)) return {kResAOff, kResBOff};
  return {kCapAOff, kCapBOff};
}

struct Builder {
  const Netlist& netlist;
  const SynthOptions& opt;
  CellLayout cell;

  double gnd_rail_y0 = 0.0, gnd_rail_y1 = 2.0;
  double bottom_row_y = 0.0;
  double channel_y0 = 0.0;
  double top_row_y = 0.0;
  double vdd_rail_y0 = 0.0, vdd_rail_y1 = 0.0;
  double cell_width = 0.0;

  std::map<std::string, int> track_of_net;
  int track_count = 0;

  struct Riser {
    std::string net;
    Point pad_center;
  };
  std::vector<Riser> risers;
  std::map<std::string, std::pair<double, double>> trunk_extent;

  Builder(const Netlist& nl, const std::string& name, const SynthOptions& o)
      : netlist(nl), opt(o), cell(name) {}

  std::string net_name(NodeId id) const { return netlist.node_name(id); }
  bool is_gnd(const std::string& net) const {
    return net == "0" || net == "gnd";
  }
  bool is_vdd(const std::string& net) const { return net == opt.vdd_net; }
  bool on_rail(const std::string& net) const {
    return is_gnd(net) || is_vdd(net);
  }
  bool is_pin(const std::string& net) const {
    return std::find(opt.pins.begin(), opt.pins.end(), net) !=
           opt.pins.end();
  }

  void note_extent(const std::string& net, double x) {
    auto [it, inserted] = trunk_extent.emplace(net, std::make_pair(x, x));
    if (!inserted) {
      it->second.first = std::min(it->second.first, x);
      it->second.second = std::max(it->second.second, x);
    }
  }

  void request_riser(const std::string& net, Point pad_center) {
    risers.push_back({net, pad_center});
    note_extent(net, pad_center.x);
  }

  void pad_with_contact(const std::string& net, Point c) {
    cell.add_shape(
        {Layer::kContact, Rect::square(c, opt.rules.contact_size), net});
    cell.add_shape(
        {Layer::kMetal1, Rect::square(c, opt.rules.metal_width), net});
  }

  double track_y(int track) const {
    return channel_y0 +
           (static_cast<double>(track) + 0.5) * opt.rules.track_pitch();
  }

  double trunk_center_y(const std::string& net) const {
    if (is_gnd(net)) return (gnd_rail_y0 + gnd_rail_y1) / 2.0;
    if (is_vdd(net)) return (vdd_rail_y0 + vdd_rail_y1) / 2.0;
    return track_y(track_of_net.at(net));
  }
};

/// Assigns devices to slots and computes the cell width.
Placement plan_placement(const Netlist& netlist, const SynthOptions& opt) {
  Placement plan;
  std::size_t bottom_slot = 0, top_slot = 0;
  for (const auto& device : netlist.devices()) {
    if (const auto* m = std::get_if<Mosfet>(&device)) {
      if (m->type == MosType::kPmos) {
        plan.top.push_back(
            {&device,
             kMargin + (static_cast<double>(top_slot++) + 0.5) *
                           opt.slot_width +
                 kPmosOffset,
             true});
      } else {
        plan.bottom.push_back(
            {&device,
             kMargin + (static_cast<double>(bottom_slot++) + 0.5) *
                           opt.slot_width,
             false});
      }
    } else if (std::holds_alternative<Resistor>(device) ||
               std::holds_alternative<Capacitor>(device)) {
      plan.bottom.push_back(
          {&device,
           kMargin + (static_cast<double>(bottom_slot++) + 0.5) *
                         opt.slot_width,
           false});
    }
  }
  if (plan.bottom.empty() && plan.top.empty())
    throw util::InvalidInputError("synthesize_layout: no physical devices");
  const std::size_t slots = std::max(bottom_slot, top_slot);
  plan.cell_width = 2.0 * kMargin +
                    static_cast<double>(std::max<std::size_t>(slots, 1)) *
                        opt.slot_width +
                    (plan.top.empty() ? 0.0 : kPmosOffset);
  return plan;
}

/// Pre-computes per-net trunk extents from the slot plan so tracks can
/// be packed before any geometry exists.
std::map<std::string, std::pair<double, double>> plan_extents(
    const Builder& b, const Placement& plan) {
  std::map<std::string, std::pair<double, double>> extent;
  auto note = [&](const std::string& net, double x) {
    auto [it, inserted] = extent.emplace(net, std::make_pair(x, x));
    if (!inserted) {
      it->second.first = std::min(it->second.first, x);
      it->second.second = std::max(it->second.second, x);
    }
  };
  auto visit_slot = [&](const DeviceSlot& slot) {
    const auto nodes = Netlist::terminal_nodes(*slot.device);
    const auto offsets = pad_offsets(*slot.device);
    for (std::size_t t = 0; t < nodes.size(); ++t) {
      const std::string net = b.net_name(nodes[t]);
      const bool is_bulk =
          std::holds_alternative<Mosfet>(*slot.device) && t == 3;
      if (is_bulk && b.on_rail(net)) continue;  // taps the rail directly
      note(net, slot.xc + offsets[t]);
    }
  };
  for (const auto& slot : plan.bottom) visit_slot(slot);
  for (const auto& slot : plan.top) visit_slot(slot);
  return extent;
}

/// Greedy interval packing of net trunks onto channel tracks.
/// Hinted nets get dedicated tracks 0..k-1 in hint order (this is what
/// keeps "bias lines adjacent" expressible); everything else shares
/// tracks where extents don't overlap. Pin nets span the full cell and
/// therefore never share.
void assign_tracks(
    Builder& b, const std::vector<std::string>& nets,
    const std::map<std::string, std::pair<double, double>>& extents) {
  int next_track = 0;
  for (const auto& net : b.opt.track_order) {
    if (b.on_rail(net)) continue;
    if (std::find(nets.begin(), nets.end(), net) == nets.end()) continue;
    if (!b.track_of_net.count(net)) b.track_of_net[net] = next_track++;
  }

  struct TrackUse {
    std::vector<std::pair<double, double>> spans;
  };
  std::vector<TrackUse> shared;  // indexed from next_track upward
  const double clearance = 2.5;

  for (const auto& net : nets) {
    if (b.on_rail(net) || b.track_of_net.count(net)) continue;
    std::pair<double, double> span{0.0, b.cell_width};
    if (!b.is_pin(net)) {
      auto it = extents.find(net);
      if (it != extents.end())
        span = {it->second.first - clearance, it->second.second + clearance};
    }
    std::size_t chosen = shared.size();
    for (std::size_t t = 0; t < shared.size(); ++t) {
      const bool overlaps = std::any_of(
          shared[t].spans.begin(), shared[t].spans.end(),
          [&](const std::pair<double, double>& s) {
            return span.first < s.second && s.first < span.second;
          });
      if (!overlaps) {
        chosen = t;
        break;
      }
    }
    if (chosen == shared.size()) shared.emplace_back();
    shared[chosen].spans.push_back(span);
    b.track_of_net[net] = next_track + static_cast<int>(chosen);
  }
  b.track_count = next_track + static_cast<int>(shared.size());
}

void place_mosfet(Builder& b, const Mosfet& mos, double xc, double row_y) {
  const auto& rules = b.opt.rules;
  const std::string d_net = b.net_name(mos.drain);
  const std::string g_net = b.net_name(mos.gate);
  const std::string s_net = b.net_name(mos.source);
  const std::string bulk_net = b.net_name(mos.bulk);
  const bool pmos = mos.type == MosType::kPmos;

  const double h_act = std::clamp(mos.w * 1e6, rules.active_width, 8.0);
  const double half_gate = rules.poly_width / 2.0;
  const double sd_w = 3.2;  // covers the pad; >= active_width

  const Rect s_act{xc - half_gate - sd_w, row_y, xc - half_gate,
                   row_y + h_act};
  const Rect d_act{xc + half_gate, row_y, xc + half_gate + sd_w,
                   row_y + h_act};
  b.cell.add_shape({Layer::kActive, s_act, s_net});
  b.cell.add_shape({Layer::kActive, d_act, d_net});

  const double gate_ext = 1.0;
  const Rect gate{xc - half_gate, row_y - gate_ext, xc + half_gate,
                  row_y + h_act + gate_ext};
  b.cell.add_shape({Layer::kPoly, gate, g_net});
  const Point gate_pad_c{xc + kGateOff, row_y + h_act + gate_ext + 0.6};
  b.cell.add_shape({Layer::kPoly,
                    Rect{xc - 0.7, row_y + h_act + gate_ext - 0.2, xc + 0.7,
                         gate_pad_c.y + 0.7},
                    g_net});
  b.pad_with_contact(g_net, gate_pad_c);

  const Point s_pad_c{xc + kSourceOff, row_y + h_act / 2.0};
  const Point d_pad_c{xc + kDrainOff, row_y + h_act / 2.0};
  b.pad_with_contact(s_net, s_pad_c);
  b.pad_with_contact(d_net, d_pad_c);

  b.cell.add_mos_region(
      {mos.name, Rect{xc - half_gate, row_y, xc + half_gate, row_y + h_act},
       g_net, s_net, d_net, pmos});

  b.cell.add_tap({d_net, mos.name, 0, d_pad_c, Layer::kActive});
  b.cell.add_tap({g_net, mos.name, 1, gate_pad_c, Layer::kPoly});
  b.cell.add_tap({s_net, mos.name, 2, s_pad_c, Layer::kActive});
  b.request_riser(d_net, d_pad_c);
  b.request_riser(g_net, gate_pad_c);
  b.request_riser(s_net, s_pad_c);

  if (b.on_rail(bulk_net)) {
    const double rail_y = b.is_gnd(bulk_net)
                              ? (b.gnd_rail_y0 + b.gnd_rail_y1) / 2.0
                              : (b.vdd_rail_y0 + b.vdd_rail_y1) / 2.0;
    b.cell.add_tap({bulk_net, mos.name, 3, {xc, rail_y}, Layer::kMetal1});
    b.note_extent(bulk_net, xc);
  } else {
    const Point bulk_pad_c{xc + kBulkOff, row_y - gate_ext};
    b.pad_with_contact(bulk_net, bulk_pad_c);
    b.cell.add_tap({bulk_net, mos.name, 3, bulk_pad_c, Layer::kMetal1});
    b.request_riser(bulk_net, bulk_pad_c);
  }
}

void place_resistor(Builder& b, const Resistor& res, double xc, double row_y) {
  const std::string a_net = b.net_name(res.a);
  const std::string b_net = b.net_name(res.b);

  // Poly body split at the midpoint: each half carries its end's label,
  // with a poly-space-clean gap between the halves (the resistance
  // lives in the netlist, not the geometry).
  const Rect body_a{xc - 3.0, row_y, xc - 0.6, row_y + 0.8};
  const Rect body_b{xc + 0.6, row_y, xc + 3.0, row_y + 0.8};
  b.cell.add_shape({Layer::kPoly, body_a, a_net});
  b.cell.add_shape({Layer::kPoly, body_b, b_net});

  const Point a_pad{xc + kResAOff, row_y + 0.4};
  const Point b_pad{xc + kResBOff, row_y + 0.4};
  b.pad_with_contact(a_net, a_pad);
  b.pad_with_contact(b_net, b_pad);
  b.cell.add_tap({a_net, res.name, 0, a_pad, Layer::kPoly});
  b.cell.add_tap({b_net, res.name, 1, b_pad, Layer::kPoly});
  b.request_riser(a_net, a_pad);
  b.request_riser(b_net, b_pad);
}

void place_capacitor(Builder& b, const Capacitor& cap, double xc,
                     double row_y) {
  const std::string a_net = b.net_name(cap.a);
  const std::string b_net = b.net_name(cap.b);

  // Poly bottom plate (net a) under a metal1 top plate (net b). No cut
  // joins them; only a thick-oxide pinhole defect can short the plates.
  const Rect plate{xc - 1.9, row_y + 1.2, xc + 1.9, row_y + 3.2};
  b.cell.add_shape({Layer::kPoly, plate, a_net});
  b.cell.add_shape({Layer::kMetal1, plate, b_net});

  // Bottom plate escapes sideways and down to its contact, keeping the
  // metal1 pad a full spacing rule away from the top plate.
  const Rect finger{xc + kCapAOff - 0.4, row_y + 1.2, xc - 1.4,
                    row_y + 2.0};
  b.cell.add_shape({Layer::kPoly, finger, a_net});
  const Rect drop{xc + kCapAOff - 0.4, row_y - 1.8, xc + kCapAOff + 0.4,
                  row_y + 1.3};
  b.cell.add_shape({Layer::kPoly, drop, a_net});
  const Point a_pad{xc + kCapAOff, row_y - 1.2};
  b.pad_with_contact(a_net, a_pad);

  const Point b_pad{xc + kCapBOff, row_y + 2.2};  // on the top plate
  b.cell.add_tap({a_net, cap.name, 0, a_pad, Layer::kPoly});
  b.cell.add_tap({b_net, cap.name, 1, b_pad, Layer::kMetal1});
  b.request_riser(a_net, a_pad);
  b.request_riser(b_net, b_pad);
}

}  // namespace

CellLayout synthesize_layout(const Netlist& netlist,
                             const std::string& cell_name,
                             const SynthOptions& options) {
  Builder b(netlist, cell_name, options);
  const auto& rules = options.rules;

  const Placement plan = plan_placement(netlist, options);
  b.cell_width = plan.cell_width;

  // Which nets exist on physical devices, in first-use order.
  std::vector<std::string> nets;
  auto add_net = [&](const std::string& name) {
    if (std::find(nets.begin(), nets.end(), name) == nets.end())
      nets.push_back(name);
  };
  for (const auto* slots : {&plan.bottom, &plan.top})
    for (const auto& slot : *slots)
      for (NodeId id : Netlist::terminal_nodes(*slot.device))
        add_net(b.net_name(id));

  assign_tracks(b, nets, plan_extents(b, plan));

  // Vertical structure, now that the track count is known.
  double bottom_h = 1.6, top_h = 1.6;
  for (const auto& slot : plan.bottom) {
    if (const auto* m = std::get_if<Mosfet>(slot.device))
      bottom_h = std::max(bottom_h,
                          std::clamp(m->w * 1e6, rules.active_width, 8.0));
    else
      bottom_h = std::max(bottom_h, 3.2);
  }
  for (const auto& slot : plan.top) {
    const auto* m = std::get_if<Mosfet>(slot.device);
    top_h =
        std::max(top_h, std::clamp(m->w * 1e6, rules.active_width, 8.0));
  }
  b.gnd_rail_y0 = 0.0;
  b.gnd_rail_y1 = 2.0;
  b.bottom_row_y = b.gnd_rail_y1 + 3.5;
  const double bottom_top = b.bottom_row_y + bottom_h + 3.0;
  b.channel_y0 = bottom_top + 1.5;
  const double channel_top =
      b.channel_y0 + std::max(b.track_count, 1) * rules.track_pitch();
  b.top_row_y = channel_top + 3.5;
  const double top_top = b.top_row_y + top_h + 3.0;
  b.vdd_rail_y0 = top_top + 1.5;
  b.vdd_rail_y1 = b.vdd_rail_y0 + 2.0;

  // Rails.
  const bool have_gnd = std::any_of(
      nets.begin(), nets.end(),
      [&](const std::string& n) { return b.is_gnd(n); });
  const bool have_vdd = std::any_of(
      nets.begin(), nets.end(),
      [&](const std::string& n) { return b.is_vdd(n); });
  if (have_gnd)
    b.cell.add_shape({Layer::kMetal1,
                      Rect{0.0, b.gnd_rail_y0, b.cell_width, b.gnd_rail_y1},
                      "0"});
  if (have_vdd)
    b.cell.add_shape({Layer::kMetal1,
                      Rect{0.0, b.vdd_rail_y0, b.cell_width, b.vdd_rail_y1},
                      options.vdd_net});

  // N-well over the PMOS row.
  if (!plan.top.empty())
    b.cell.add_nwell(
        Rect{0.0, b.top_row_y - 2.0, b.cell_width, b.vdd_rail_y1 + 0.5});

  // Devices.
  for (const auto& slot : plan.bottom) {
    if (const auto* m = std::get_if<Mosfet>(slot.device))
      place_mosfet(b, *m, slot.xc, b.bottom_row_y);
    else if (const auto* r = std::get_if<Resistor>(slot.device))
      place_resistor(b, *r, slot.xc, b.bottom_row_y);
    else
      place_capacitor(b, *std::get_if<Capacitor>(slot.device), slot.xc,
                      b.bottom_row_y);
  }
  for (const auto& slot : plan.top)
    place_mosfet(b, *std::get_if<Mosfet>(slot.device), slot.xc, b.top_row_y);

  // Channel trunks.
  for (const auto& [net, track] : b.track_of_net) {
    double x_lo = b.cell_width / 2.0 - 1.0, x_hi = b.cell_width / 2.0 + 1.0;
    if (auto it = b.trunk_extent.find(net); it != b.trunk_extent.end()) {
      x_lo = it->second.first - 1.0;
      x_hi = it->second.second + 1.0;
    }
    if (b.is_pin(net)) {
      x_lo = 0.0;
      x_hi = b.cell_width;
    }
    const double yc = b.track_y(track);
    b.cell.add_shape({Layer::kMetal1,
                      Rect{x_lo, yc - rules.metal_width / 2.0, x_hi,
                           yc + rules.metal_width / 2.0},
                      net});
    if (b.is_pin(net)) b.cell.add_tap({net, "pin", 0, {x_lo + 0.6, yc}});
  }
  if (b.is_pin("0") && have_gnd)
    b.cell.add_tap(
        {"0", "pin", 0, {0.6, (b.gnd_rail_y0 + b.gnd_rail_y1) / 2}});
  if (b.is_pin(options.vdd_net) && have_vdd)
    b.cell.add_tap({options.vdd_net, "pin", 0,
                    {0.6, (b.vdd_rail_y0 + b.vdd_rail_y1) / 2}});

  // Risers.
  for (const auto& riser : b.risers) {
    const double yc = b.trunk_center_y(riser.net);
    const Point pad = riser.pad_center;
    const double half_w = rules.metal_width / 2.0;
    b.cell.add_shape(
        {Layer::kVia1, Rect::square(pad, rules.via_size), riser.net});
    b.cell.add_shape({Layer::kVia1, Rect::square({pad.x, yc}, rules.via_size),
                      riser.net});
    b.cell.add_shape(
        {Layer::kMetal2,
         Rect::spanning(pad.x - half_w, std::min(pad.y, yc) - half_w,
                        pad.x + half_w, std::max(pad.y, yc) + half_w),
         riser.net});
  }

  const auto issues = verify_net_labels(b.cell);
  if (!issues.empty()) {
    std::string joined;
    for (const auto& issue : issues) joined += "\n  " + issue;
    throw util::InvalidInputError("synthesize_layout(" + cell_name +
                                  "): label check failed:" + joined);
  }
  return std::move(b.cell);
}

}  // namespace dot::layout
