// Text serialization of cell layouts: a simple line-oriented format so
// layouts survive across tool invocations (cache a synthesized cell,
// ship a hand-drawn one, archive the exact geometry a campaign used).
//
//   cell <name>
//   shape <layer> <x0> <y0> <x1> <y1> [<net>]
//   nwell <x0> <y0> <x1> <y1>
//   tap <net> <device> <terminal> <x> <y> <layer>
//   mos <device> <x0> <y0> <x1> <y1> <gate> <source> <drain> <in_nwell>
//
// '#' starts a comment. The writer/parser round-trip exactly.
#pragma once

#include <string>

#include "layout/cell.hpp"

namespace dot::layout {

std::string to_text(const CellLayout& cell);

/// Throws util::InvalidInputError with a line number on syntax errors.
CellLayout parse_text(const std::string& text);

}  // namespace dot::layout
