// Process layers of the synthetic single-poly double-metal CMOS flow
// used for the case study, modelled on early-1990s 5 V technology.
#pragma once

#include <string>

namespace dot::layout {

enum class Layer {
  kNWell,    ///< N-well region (PMOS bulk).
  kActive,   ///< Diffusion.
  kPoly,     ///< Polysilicon (gates, resistors, local wiring).
  kContact,  ///< Metal1 <-> poly/active contact cut.
  kMetal1,
  kVia1,     ///< Metal1 <-> Metal2 via cut.
  kMetal2,
};

inline constexpr int kLayerCount = 7;

const std::string& layer_name(Layer layer);

/// Conducting layers carry nets; cut layers (contact/via) connect them;
/// the well layer is neither.
bool is_conducting(Layer layer);
bool is_cut(Layer layer);

/// Nominal design rules for the synthetic process (micrometres).
struct TechRules {
  double metal_width = 1.2;
  double metal_space = 1.2;
  double poly_width = 0.8;
  double poly_space = 1.0;
  double active_width = 1.6;
  double contact_size = 0.8;
  double via_size = 0.8;
  double grid = 0.2;  ///< All coordinates snap to this.

  double track_pitch() const { return metal_width + metal_space; }
};

}  // namespace dot::layout
