#include "layout/drc.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dot::layout {
namespace {

double min_width_rule(const TechRules& rules, Layer layer) {
  switch (layer) {
    case Layer::kMetal1:
    case Layer::kMetal2:
      return rules.metal_width;
    case Layer::kPoly:
      return rules.poly_width;
    case Layer::kActive:
      return rules.active_width;
    case Layer::kContact:
      return rules.contact_size;
    case Layer::kVia1:
      return rules.via_size;
    case Layer::kNWell:
      return 0.0;
  }
  return 0.0;
}

double spacing_rule(const TechRules& rules, Layer layer) {
  switch (layer) {
    case Layer::kMetal1:
    case Layer::kMetal2:
      return rules.metal_space;
    case Layer::kPoly:
      return rules.poly_space;
    case Layer::kActive:
      return rules.active_width;  // use width as the diffusion space
    default:
      return 0.0;  // cut layers: no spacing rule here
  }
}

/// Gap between two disjoint rectangles (Chebyshev-style: the larger of
/// the axis gaps; 0 if they overlap in both axes).
double rect_gap(const Rect& a, const Rect& b, Rect* gap_region) {
  const double dx = std::max({a.x_lo - b.x_hi, b.x_lo - a.x_hi, 0.0});
  const double dy = std::max({a.y_lo - b.y_hi, b.y_lo - a.y_hi, 0.0});
  if (gap_region != nullptr) {
    gap_region->x_lo = std::max(std::min(a.x_hi, b.x_hi),
                                std::min(a.x_lo, b.x_lo));
    gap_region->x_hi = std::min(std::max(a.x_lo, b.x_lo),
                                std::max(a.x_hi, b.x_hi));
    if (gap_region->x_hi < gap_region->x_lo)
      std::swap(gap_region->x_lo, gap_region->x_hi);
    gap_region->y_lo = std::max(std::min(a.y_hi, b.y_hi),
                                std::min(a.y_lo, b.y_lo));
    gap_region->y_hi = std::min(std::max(a.y_lo, b.y_lo),
                                std::max(a.y_hi, b.y_hi));
    if (gap_region->y_hi < gap_region->y_lo)
      std::swap(gap_region->y_lo, gap_region->y_hi);
  }
  return std::max(dx, dy);
}

bool cut_connects(Layer cut, Layer conductor) {
  if (cut == Layer::kContact)
    return conductor == Layer::kMetal1 || conductor == Layer::kPoly ||
           conductor == Layer::kActive;
  if (cut == Layer::kVia1)
    return conductor == Layer::kMetal1 || conductor == Layer::kMetal2;
  return false;
}

}  // namespace

std::vector<DrcViolation> run_drc(const CellLayout& cell,
                                  const DrcOptions& options) {
  std::vector<DrcViolation> out;
  const auto& shapes = cell.shapes();

  if (options.check_width) {
    for (const auto& shape : shapes) {
      const double rule = min_width_rule(options.rules, shape.layer);
      const double w = std::min(shape.rect.width(), shape.rect.height());
      if (w + 1e-9 < rule) {
        out.push_back({DrcRule::kMinWidth, shape.layer, shape.rect,
                       layer_name(shape.layer) + " width " +
                           std::to_string(w) + " < " +
                           std::to_string(rule) + " (net " + shape.net +
                           ")"});
      }
    }
  }

  if (options.check_spacing) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const auto& a = shapes[i];
      if (!is_conducting(a.layer)) continue;
      const double rule = spacing_rule(options.rules, a.layer);
      if (rule <= 0.0) continue;
      for (std::size_t j = i + 1; j < shapes.size(); ++j) {
        const auto& b = shapes[j];
        if (b.layer != a.layer || b.net == a.net) continue;
        Rect gap_region;
        const double gap = rect_gap(a.rect, b.rect, &gap_region);
        if (gap + 1e-9 >= rule) continue;
        if (gap <= 0.0) continue;  // overlap = short, extraction's job
        // Transistor exemption: an active-to-active gap fully bridged
        // by gate poly is a channel, not a spacing violation.
        if (a.layer == Layer::kActive &&
            !cell.shapes_hit(Layer::kPoly, gap_region).empty())
          continue;
        out.push_back({DrcRule::kSpacing, a.layer, gap_region,
                       layer_name(a.layer) + " spacing " +
                           std::to_string(gap) + " < " +
                           std::to_string(rule) + " between nets " + a.net +
                           " and " + b.net});
      }
    }
  }

  if (options.check_cuts) {
    for (const auto& shape : shapes) {
      if (!is_cut(shape.layer)) continue;
      int layers_touched = 0;
      for (Layer conductor : {Layer::kActive, Layer::kPoly, Layer::kMetal1,
                              Layer::kMetal2}) {
        if (!cut_connects(shape.layer, conductor)) continue;
        if (!cell.shapes_hit(conductor, shape.rect).empty())
          ++layers_touched;
      }
      if (layers_touched < 2) {
        // Substrate/well taps legitimately contact only metal1.
        const bool substrate_tap =
            shape.layer == Layer::kContact &&
            !cell.shapes_hit(Layer::kMetal1, shape.rect).empty();
        if (!substrate_tap)
          out.push_back({DrcRule::kDanglingCut, shape.layer, shape.rect,
                         layer_name(shape.layer) +
                             " does not bridge two layers (net " +
                             shape.net + ")"});
      }
    }
  }
  return out;
}

std::string drc_report(const std::vector<DrcViolation>& violations) {
  std::ostringstream os;
  os << violations.size() << " DRC violation(s)\n";
  for (const auto& v : violations)
    os << "  [" << v.at.str() << "] " << v.detail << '\n';
  return os.str();
}

}  // namespace dot::layout
