#include "layout/geometry.hpp"

#include <algorithm>
#include <cstdio>

namespace dot::layout {

Rect Rect::spanning(double x0, double y0, double x1, double y1) {
  return Rect{std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
              std::max(y0, y1)};
}

Rect Rect::square(Point p, double size) {
  const double half = size / 2.0;
  return Rect{p.x - half, p.y - half, p.x + half, p.y + half};
}

bool Rect::contains(Point p) const {
  return p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi;
}

bool Rect::intersects(const Rect& other) const {
  return x_lo < other.x_hi && other.x_lo < x_hi && y_lo < other.y_hi &&
         other.y_lo < y_hi;
}

Rect Rect::intersection(const Rect& other) const {
  return Rect{std::max(x_lo, other.x_lo), std::max(y_lo, other.y_lo),
              std::min(x_hi, other.x_hi), std::min(y_hi, other.y_hi)};
}

Rect Rect::united(const Rect& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  return Rect{std::min(x_lo, other.x_lo), std::min(y_lo, other.y_lo),
              std::max(x_hi, other.x_hi), std::max(y_hi, other.y_hi)};
}

Rect Rect::expanded(double margin) const {
  return Rect{x_lo - margin, y_lo - margin, x_hi + margin, y_hi + margin};
}

std::string Rect::str() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "(%.2f,%.2f)-(%.2f,%.2f)", x_lo, y_lo, x_hi,
                y_hi);
  return buf;
}

}  // namespace dot::layout
