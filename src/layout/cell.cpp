#include "layout/cell.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dot::layout {

void CellLayout::add_shape(Shape shape) {
  if (shape.rect.empty())
    throw util::InvalidInputError("CellLayout::add_shape: empty rect");
  if (is_conducting(shape.layer) && shape.net.empty())
    throw util::InvalidInputError(
        "CellLayout::add_shape: conducting shape needs a net label");
  shapes_.push_back(std::move(shape));
  bbox_cache_.reset();
}

void CellLayout::add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

void CellLayout::add_mos_region(MosRegion region) {
  mos_regions_.push_back(std::move(region));
}

void CellLayout::add_nwell(Rect rect) {
  nwells_.push_back(rect);
  bbox_cache_.reset();
}

Rect CellLayout::bounding_box() const {
  if (bbox_cache_) return *bbox_cache_;
  Rect box;
  for (const auto& s : shapes_) box = box.united(s.rect);
  for (const auto& w : nwells_) box = box.united(w);
  bbox_cache_ = box;
  return box;
}

std::vector<std::string> CellLayout::nets() const {
  std::vector<std::string> out;
  for (const auto& s : shapes_) {
    if (s.net.empty()) continue;
    if (std::find(out.begin(), out.end(), s.net) == out.end())
      out.push_back(s.net);
  }
  return out;
}

std::vector<std::size_t> CellLayout::shapes_hit(Layer layer,
                                                const Rect& probe) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < shapes_.size(); ++i)
    if (shapes_[i].layer == layer && shapes_[i].rect.intersects(probe))
      out.push_back(i);
  return out;
}

bool CellLayout::inside_nwell(Point p) const {
  return std::any_of(nwells_.begin(), nwells_.end(),
                     [&](const Rect& w) { return w.contains(p); });
}

const MosRegion* CellLayout::mos_region_at(Point p) const {
  for (const auto& region : mos_regions_)
    if (region.channel.contains(p)) return &region;
  return nullptr;
}

}  // namespace dot::layout
