// Design-rule checking for cell layouts: minimum width, same-layer
// spacing between different nets, and cut (contact/via) connectivity.
// Transistor channels -- active-to-active gaps covered by gate poly --
// are recognized and exempted from the spacing rule.
//
// Used both as a library feature and as a self-check of the procedural
// layout synthesizer (the property suite runs it on random cells).
#pragma once

#include <string>
#include <vector>

#include "layout/cell.hpp"
#include "layout/layers.hpp"

namespace dot::layout {

enum class DrcRule {
  kMinWidth,
  kSpacing,
  kDanglingCut,  ///< Contact/via not bridging two conducting layers.
};

struct DrcViolation {
  DrcRule rule = DrcRule::kMinWidth;
  Layer layer = Layer::kMetal1;
  Rect at;               ///< Offending shape or the gap region.
  std::string detail;    ///< Human-readable description.
};

struct DrcOptions {
  TechRules rules;
  /// Spacing checks apply only between shapes of different nets (same
  /// net shapes may abut or overlap freely).
  bool check_spacing = true;
  bool check_width = true;
  bool check_cuts = true;
};

/// Runs the checks; returns all violations (empty = clean).
std::vector<DrcViolation> run_drc(const CellLayout& cell,
                                  const DrcOptions& options = {});

std::string drc_report(const std::vector<DrcViolation>& violations);

}  // namespace dot::layout
