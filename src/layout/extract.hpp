// Geometric connectivity extraction.
//
// Two uses:
//  1. Verifying that a synthesized layout's net labels agree with its
//     geometry (every label is one connected component).
//  2. Open-fault analysis: when a missing-material defect deletes wire
//     material, recomputing the connected components of the damaged net
//     tells us how the device taps are partitioned.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "layout/cell.hpp"

namespace dot::layout {

/// Disjoint-set over shape indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t i);
  void unite(std::size_t a, std::size_t b);
  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

struct ExtractionResult {
  /// Component id per shape; -1 for non-conducting shapes (wells).
  std::vector<int> component_of_shape;
  int component_count = 0;
};

/// Connects same-layer overlapping conductors, contacts (metal1 to
/// poly/active) and vias (metal1 to metal2). Cut shapes join the
/// component of the layers they connect.
ExtractionResult extract_connectivity(const CellLayout& cell);

/// Human-readable label/geometry mismatches: a net label split over
/// several components, or one component carrying several labels.
std::vector<std::string> verify_net_labels(const CellLayout& cell);

/// Partition of the tap indices of `net` into electrically connected
/// groups after deleting the given shapes (wire material or cuts).
/// A tap whose supporting material vanished forms its own group.
std::vector<std::vector<std::size_t>> tap_groups_after_removal(
    const CellLayout& cell, const std::string& net,
    const std::vector<std::size_t>& removed_shapes);

}  // namespace dot::layout
