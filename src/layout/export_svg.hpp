// SVG rendering of cell layouts, with optional defect overlays -- the
// debugging view for layout synthesis and defect analysis.
#pragma once

#include <string>
#include <vector>

#include "layout/cell.hpp"

namespace dot::layout {

struct SvgMarker {
  Rect rect;
  std::string color = "#ff0000";
  std::string label;
};

struct SvgOptions {
  double scale = 8.0;          ///< Pixels per micrometre.
  bool draw_taps = true;
  bool draw_net_labels = false;  ///< Text label on each trunk-sized shape.
  std::vector<SvgMarker> markers;  ///< E.g. defect footprints.
};

/// Renders the layout as a standalone SVG document.
std::string to_svg(const CellLayout& cell, const SvgOptions& options = {});

/// Convenience: renders and writes to a file; throws on I/O failure.
void write_svg(const CellLayout& cell, const std::string& path,
               const SvgOptions& options = {});

}  // namespace dot::layout
