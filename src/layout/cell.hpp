// Cell layout: the geometric view of one macro cell, with net labels and
// device regions attached. This is the input of the defect simulator.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "layout/geometry.hpp"
#include "layout/layers.hpp"

namespace dot::layout {

/// One labelled rectangle of conducting material (or a cut / well).
struct Shape {
  Layer layer = Layer::kMetal1;
  Rect rect;
  /// Net label for conducting shapes; for cuts this is the net the cut
  /// belongs to; empty for wells.
  std::string net;
};

/// A point where a device terminal or cell pin electrically taps a net.
/// Opens partition a net's taps into disconnected groups. The layer
/// disambiguates stacked material (a gate tap belongs to the poly pad,
/// not the metal1 pad sitting right above it).
struct Tap {
  std::string net;
  std::string device;  ///< Device name, or "pin" for a cell pin.
  int terminal = 0;    ///< Canonical terminal index (see Netlist).
  Point at;
  Layer layer = Layer::kMetal1;
};

/// Channel region of a MOSFET: where its gate poly crosses its active
/// area. Needed for gate-oxide pinhole and shorted-device analysis.
struct MosRegion {
  std::string device;
  Rect channel;
  std::string gate_net;
  std::string source_net;
  std::string drain_net;
  bool in_nwell = false;  ///< PMOS devices sit inside the n-well.
};

class CellLayout {
 public:
  explicit CellLayout(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_shape(Shape shape);
  void add_tap(Tap tap);
  void add_mos_region(MosRegion region);
  void add_nwell(Rect rect);

  const std::vector<Shape>& shapes() const { return shapes_; }
  const std::vector<Tap>& taps() const { return taps_; }
  const std::vector<MosRegion>& mos_regions() const { return mos_regions_; }
  const std::vector<Rect>& nwells() const { return nwells_; }

  /// Bounding box of everything (cached once sealed).
  Rect bounding_box() const;
  double area() const { return bounding_box().area(); }

  /// All distinct net labels appearing on shapes.
  std::vector<std::string> nets() const;

  /// Indices of shapes on `layer` intersecting `probe`.
  std::vector<std::size_t> shapes_hit(Layer layer, const Rect& probe) const;

  /// True when `p` lies inside any n-well rectangle.
  bool inside_nwell(Point p) const;

  /// The MOS region containing `p`, if any.
  const MosRegion* mos_region_at(Point p) const;

 private:
  std::string name_;
  std::vector<Shape> shapes_;
  std::vector<Tap> taps_;
  std::vector<MosRegion> mos_regions_;
  std::vector<Rect> nwells_;
  mutable std::optional<Rect> bbox_cache_;
};

}  // namespace dot::layout
