// Campaign dispatcher: farms shards of a defect-coverage campaign to
// remote workers and folds their class records into one crash-safe
// master journal.
//
// Layering: DispatchCore is the entire control plane -- handshake,
// shard assignment, heartbeat liveness, the speculative re-issue
// ladder, duplicate folding, and master-journal appends -- expressed
// against an abstract Transport and caller-supplied timestamps, so
// every failure mode is unit-testable without sockets or sleeps. The
// Dispatcher wraps a DispatchCore in a poll(2) event loop over real
// TCP connections.
//
// The master journal uses the exact JSONL schema of a single-host
// shard journal with a shard_count=1 meta, so it can be merged (and
// polled mid-campaign) with the same merge_shard_journals path, and
// the finished campaign is bit-comparable to an uninterrupted
// single-host run. Class record lines are appended byte-identically as
// received; duplicates from speculative races are folded
// first-completion-wins, which is safe because workers are
// deterministic: a byte-differing duplicate is treated as a protocol
// violation, not silently merged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dispatch/liveness.hpp"
#include "dispatch/protocol.hpp"
#include "util/journal.hpp"

namespace dot::dispatch {

/// Compares the master campaign identity (a journal meta record line)
/// against a connecting worker's; returns the first mismatching field
/// name, or "" when compatible. The flashadc glue installs the journal
/// layer's own meta-mismatch interlock here; the default is byte
/// equality.
using MetaValidator =
    std::function<std::string(const std::string& master_meta,
                              const std::string& worker_meta)>;

struct DispatcherConfig {
  std::size_t shard_count = 1;
  /// Interval workers are told to beacon at.
  double heartbeat_ms = 2000.0;
  /// Liveness timeout; <= 0 derives 4x heartbeat_ms.
  double heartbeat_timeout_ms = 0.0;
  /// Speculative re-issues per shard before it is declared unresolved.
  int max_reissues = 2;
  /// Master journal path (required).
  std::string journal_path;
  /// Checkpoint interval of the master journal (--journal-sync).
  std::size_t journal_sync = 16;
  /// Resume from an existing master journal instead of starting fresh.
  bool resume = false;
  /// Campaign identity: the meta record line written to the master
  /// journal (single-shard view) and validated against worker hellos.
  std::string meta;
  /// Class cap per macro (0 = all); must mirror the campaign config so
  /// per-shard completion is computable from macro records.
  std::size_t max_classes = 0;
  /// Macros the campaign evaluates, in campaign order. Completion of a
  /// shard requires every macro's record plus its owned class count.
  std::vector<std::string> expected_macros;
  MetaValidator validate;
};

/// How the core reaches its peers; the socket pump implements this over
/// TCP, tests with an in-memory mailbox. send() must not throw -- a
/// peer that cannot be written is reported dead via dead_conns().
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(int conn, const std::string& payload) = 0;
  /// Requests the connection be closed once the current event unwinds.
  virtual void drop(int conn) = 0;
};

struct DispatchStats {
  std::size_t classes_received = 0;
  std::size_t duplicate_records = 0;
  std::size_t protocol_errors = 0;
  std::size_t workers_seen = 0;
  std::size_t rejected_workers = 0;
  std::size_t shard_failures = 0;
};

class DispatchCore {
 public:
  DispatchCore(DispatcherConfig config, Transport& transport);

  /// A connection appeared; `conn` is any id unique among open
  /// connections (the pump uses the fd).
  void on_connect(int conn, double now);
  /// One framed payload arrived. Malformed or out-of-protocol input
  /// never throws out of here: the offending connection is dropped and
  /// its shards re-issued.
  void on_payload(int conn, const std::string& payload, double now);
  /// Peer vanished (close, reset, torn frame). Idempotent.
  void on_disconnect(int conn, double now);
  /// Advances liveness: newly stalled workers trigger the re-issue
  /// ladder for their shards. Call at least every heartbeat interval.
  void on_tick(double now);

  /// True once every shard is done or unresolved.
  bool complete() const { return table_.all_settled(); }
  /// True when complete with no unresolved shards.
  bool clean() const;
  /// Sends bye to every peer and closes the journal. Idempotent.
  void finish();
  /// Checkpoints the master journal (graceful-shutdown flush).
  void flush();

  /// Status JSON served to pollers and written next to the report.
  std::string status_json() const;
  const DispatchStats& stats() const { return stats_; }
  const ShardTable& shards() const { return table_; }
  std::size_t connected_workers() const;

 private:
  struct Conn {
    enum class Role { kNew, kWorker, kClient };
    Role role = Role::kNew;
    std::optional<std::size_t> shard;
  };

  void handle_hello(int conn, const Message& msg, double now);
  void handle_record(int conn, const Message& msg, double now);
  void handle_shard_done(int conn, const Message& msg, double now);
  void handle_shard_failed(int conn, const Message& msg, double now);
  /// Protocol violation: count it, drop the peer, re-issue its shard.
  void violation(int conn, const std::string& why, double now);
  /// Detaches `conn` from its shard (if any) and escalates the shard.
  void release_shard(int conn, double now);
  /// The re-issue ladder for a shard whose live coverage may be gone.
  void escalate(std::size_t shard, double now);
  void try_assign(double now);
  void send_msg(int conn, const Message& msg);

  std::size_t owned_classes(std::size_t truncated, std::size_t shard) const;
  void note_macro(const std::string& name, std::size_t fault_classes);
  /// Records arrival of class `index` of `macro`; returns false on a
  /// duplicate (kept-first).
  bool note_class(const std::string& macro, std::size_t index,
                  const std::string& line, bool& byte_mismatch);
  void check_shard_completion(std::size_t shard, double now);
  bool shard_records_complete(std::size_t shard) const;

  DispatcherConfig config_;
  Transport& transport_;
  ShardTable table_;
  HeartbeatMonitor monitor_;
  std::map<int, Conn> conns_;
  std::unique_ptr<util::JournalWriter> journal_;

  /// Byte-identical record lines already folded, keyed for dedup.
  std::map<std::string, std::map<std::size_t, std::string>> class_lines_;
  std::map<std::string, std::string> macro_lines_;
  std::vector<std::size_t> shard_received_;
  std::vector<std::size_t> shard_expected_;
  bool macros_known_ = false;
  bool finished_ = false;
  DispatchStats stats_;
};

/// TCP front end: owns the listener, the per-connection frame
/// decoders, and the poll loop; delegates every decision to
/// DispatchCore.
class Dispatcher {
 public:
  /// Binds the listen socket immediately (port 0 picks an ephemeral
  /// port); `any_interface` exposes it beyond loopback.
  Dispatcher(DispatcherConfig config, std::uint16_t port,
             bool any_interface = false);
  ~Dispatcher();

  std::uint16_t port() const;

  /// Runs the event loop until the campaign settles or a shutdown
  /// signal is raised. Returns 0 on a clean campaign, 3 when shards
  /// ended unresolved, 128+sig on interruption (journal flushed).
  /// `on_idle` (optional) runs once per poll iteration.
  int run(const std::function<void()>& on_idle = {});

  DispatchCore& core();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dot::dispatch
