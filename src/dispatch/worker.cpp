#include "dispatch/worker.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "dispatch/framing.hpp"
#include "dispatch/protocol.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/shutdown.hpp"
#include "util/socket.hpp"

namespace dot::dispatch {

namespace {

/// State shared between the main (evaluating) thread and the reader/
/// heartbeat thread. The socket itself is split by direction: only the
/// reader thread reads; writes from either thread serialize on
/// write_mu so frames never interleave.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ShardAssignment> queue;
  bool bye = false;
  bool conn_lost = false;
  bool stop = false;
  bool abandon_current = false;
  bool have_current = false;
  std::size_t current_shard = 0;
  double heartbeat_ms = 1000.0;
};

bool send_frame(util::TcpSocket& sock, std::mutex& write_mu,
                const Message& msg, double timeout_ms) {
  const std::string frame = encode_frame(encode_message(msg));
  std::lock_guard<std::mutex> lock(write_mu);
  return sock.write_all(frame.data(), frame.size(), timeout_ms);
}

/// Blocking read of one message during the handshake (before the
/// reader thread exists).
Message read_one(util::TcpSocket& sock, FrameDecoder& decoder,
                 double timeout_ms) {
  const util::Deadline deadline(timeout_ms);
  char buf[16384];
  for (;;) {
    if (std::optional<std::string> payload = decoder.next())
      return decode_message(*payload);
    if (deadline.expired())
      throw util::IoError("handshake timed out waiting for the dispatcher");
    std::vector<util::PollItem> items;
    items.push_back({sock.fd(), false, false});
    util::poll_readable(items, std::min(100.0, deadline.remaining_ms()));
    std::size_t got = 0;
    const util::ReadStatus status = sock.read_some(buf, sizeof(buf), got);
    if (status == util::ReadStatus::kClosed)
      throw util::IoError("dispatcher closed the connection mid-handshake");
    if (status == util::ReadStatus::kData) decoder.feed(buf, got);
  }
}

void reader_loop(util::TcpSocket& sock, std::mutex& write_mu, Shared& sh,
                 double io_timeout_ms, FrameDecoder& decoder) {
  char buf[16384];
  double next_beat = util::mono_ms() + sh.heartbeat_ms;
  // Drains every fully-buffered frame out of the decoder; returns false
  // when the reader must exit (bye or malformed stream).
  const auto process_pending = [&]() -> bool {
    while (std::optional<std::string> payload = decoder.next()) {
      Message msg;
      try {
        msg = decode_message(*payload);
      } catch (const util::ProtocolError&) {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.conn_lost = true;
        sh.cv.notify_all();
        return false;
      }
      std::lock_guard<std::mutex> lock(sh.mu);
      switch (msg.type) {
        case MsgType::kAssign: {
          ShardAssignment a;
          a.shard = msg.shard;
          a.shard_count = msg.shard_count;
          a.completed = std::move(msg.completed);
          sh.queue.push_back(std::move(a));
          sh.cv.notify_all();
          break;
        }
        case MsgType::kAbandon:
          if (sh.have_current && sh.current_shard == msg.shard)
            sh.abandon_current = true;
          break;
        case MsgType::kBye:
          sh.bye = true;
          sh.cv.notify_all();
          return false;
        default:
          break;  // heartbeat echoes etc.: ignore
      }
    }
    return true;
  };
  for (;;) {
    // The handshake read may have buffered frames past the welcome --
    // the dispatcher pipelines the first assign right behind it, with
    // nothing further on the wire to wake the poll below. Drain before
    // waiting for new bytes.
    if (!process_pending()) return;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.stop || sh.bye || sh.conn_lost) return;
    }
    const double now = util::mono_ms();
    if (now >= next_beat) {
      Message beat;
      beat.type = MsgType::kHeartbeat;
      if (!send_frame(sock, write_mu, beat, io_timeout_ms)) {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.conn_lost = true;
        sh.cv.notify_all();
        return;
      }
      next_beat = now + sh.heartbeat_ms;
    }
    std::vector<util::PollItem> items;
    items.push_back({sock.fd(), false, false});
    util::poll_readable(items,
                        std::clamp(next_beat - now, 10.0, 100.0));
    if (!items[0].readable && !items[0].hangup) continue;
    for (;;) {
      std::size_t got = 0;
      util::ReadStatus status = util::ReadStatus::kClosed;
      try {
        status = sock.read_some(buf, sizeof(buf), got);
      } catch (const util::IoError&) {
        status = util::ReadStatus::kClosed;
      }
      if (status == util::ReadStatus::kWouldBlock) break;
      if (status == util::ReadStatus::kClosed) {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.conn_lost = true;
        sh.cv.notify_all();
        return;
      }
      try {
        decoder.feed(buf, got);
      } catch (const util::ProtocolError&) {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.conn_lost = true;
        sh.cv.notify_all();
        return;
      }
      if (!process_pending()) return;
    }
  }
}

}  // namespace

WorkerReport run_worker(const WorkerOptions& options) {
  if (!options.runner)
    throw util::InvalidInputError("run_worker: no ShardRunner supplied");
  if (options.meta.empty())
    throw util::InvalidInputError("run_worker: empty campaign meta record");

  util::TcpSocket sock = util::TcpSocket::connect(
      options.host, options.port, options.connect_timeout_ms);
  std::mutex write_mu;
  FrameDecoder decoder;

  Message hello;
  hello.type = MsgType::kHello;
  hello.protocol = kProtocolVersion;
  hello.meta = options.meta;
  if (!send_frame(sock, write_mu, hello, options.io_timeout_ms))
    throw util::IoError("dispatcher unreachable during handshake");
  const Message first = read_one(sock, decoder, options.io_timeout_ms);
  if (first.type == MsgType::kReject)
    throw util::ShardError("dispatcher rejected this worker: " +
                           first.reason);
  if (first.type == MsgType::kBye) {
    // The campaign settled while our hello was in flight: the
    // dispatcher dismisses every connection as it exits. Nothing to
    // do is not an error.
    return WorkerReport{};
  }
  if (first.type != MsgType::kWelcome)
    throw util::ProtocolError(std::string("expected welcome, got '") +
                              msg_type_name(first.type) + "'");
  if (first.protocol != kProtocolVersion)
    throw util::ProtocolError("dispatcher speaks protocol " +
                              std::to_string(first.protocol) + " (worker " +
                              std::to_string(kProtocolVersion) + ")");

  Shared sh;
  sh.heartbeat_ms = std::max(50.0, first.heartbeat_ms);
  std::thread reader(reader_loop, std::ref(sock), std::ref(write_mu),
                     std::ref(sh), options.io_timeout_ms,
                     std::ref(decoder));

  WorkerReport report;
  bool lost = false;
  for (;;) {
    ShardAssignment assignment;
    {
      std::unique_lock<std::mutex> lk(sh.mu);
      sh.cv.wait_for(lk, std::chrono::milliseconds(100), [&] {
        return sh.bye || sh.conn_lost || !sh.queue.empty();
      });
      if (util::shutdown_requested()) {
        report.interrupted = true;
        break;
      }
      if (sh.bye) break;
      if (sh.conn_lost) {
        lost = true;
        break;
      }
      if (sh.queue.empty()) continue;
      assignment = std::move(sh.queue.front());
      sh.queue.pop_front();
      sh.abandon_current = false;
      sh.have_current = true;
      sh.current_shard = assignment.shard;
    }

    ShardSink sink;
    sink.emit = [&](const std::string& line) {
      if (util::shutdown_requested()) throw AbandonShard("interrupted");
      {
        std::lock_guard<std::mutex> lock(sh.mu);
        if (sh.abandon_current)
          throw AbandonShard("dispatcher abandoned the shard");
        if (sh.conn_lost || sh.bye)
          throw AbandonShard("connection closed");
      }
      Message record;
      record.type = MsgType::kRecord;
      record.shard = assignment.shard;
      record.line = line;
      if (!send_frame(sock, write_mu, record, options.io_timeout_ms)) {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.conn_lost = true;
        sh.cv.notify_all();
        throw AbandonShard("connection closed");
      }
    };

    bool shard_interrupted = false;
    try {
      options.runner(assignment, sink);
      Message done;
      done.type = MsgType::kShardDone;
      done.shard = assignment.shard;
      send_frame(sock, write_mu, done, options.io_timeout_ms);
      ++report.shards_completed;
    } catch (const AbandonShard&) {
      if (util::shutdown_requested()) {
        shard_interrupted = true;
      } else {
        // Dispatcher-initiated (race lost) or lost connection: not a
        // failure, just move on to the next assignment (if any).
        ++report.shards_abandoned;
      }
    } catch (const std::exception& e) {
      Message failed;
      failed.type = MsgType::kShardFailed;
      failed.shard = assignment.shard;
      failed.reason = e.what();
      send_frame(sock, write_mu, failed, options.io_timeout_ms);
      ++report.shards_failed;
    }

    {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.have_current = false;
      sh.abandon_current = false;
    }
    if (shard_interrupted) {
      Message failed;
      failed.type = MsgType::kShardFailed;
      failed.shard = assignment.shard;
      failed.reason = "interrupted";
      send_frame(sock, write_mu, failed, options.io_timeout_ms);
      ++report.shards_failed;
      report.interrupted = true;
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.stop = true;
  }
  reader.join();
  sock.close();
  if (lost && !report.interrupted)
    throw util::IoError("dispatcher connection lost");
  return report;
}

}  // namespace dot::dispatch
