#include "dispatch/dispatcher.hpp"

#include <algorithm>

#include "dispatch/framing.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/shutdown.hpp"
#include "util/socket.hpp"

namespace dot::dispatch {

using util::JsonValue;
using util::JsonWriter;

DispatchCore::DispatchCore(DispatcherConfig config, Transport& transport)
    : config_(std::move(config)),
      transport_(transport),
      table_(config_.shard_count),
      monitor_(config_.heartbeat_timeout_ms > 0.0
                   ? config_.heartbeat_timeout_ms
                   : 4.0 * config_.heartbeat_ms) {
  if (config_.shard_count == 0)
    throw util::InvalidInputError("dispatcher: shard_count must be >= 1");
  if (config_.journal_path.empty())
    throw util::InvalidInputError("dispatcher: empty master journal path");
  if (config_.meta.empty())
    throw util::InvalidInputError("dispatcher: empty campaign meta record");
  if (config_.heartbeat_ms <= 0.0)
    throw util::InvalidInputError("dispatcher: heartbeat_ms must be > 0");
  if (config_.expected_macros.empty())
    throw util::InvalidInputError(
        "dispatcher: expected_macros must name the campaign's macros");
  if (!config_.validate)
    config_.validate = [](const std::string& a, const std::string& b) {
      return a == b ? std::string() : std::string("meta");
    };
  shard_received_.assign(config_.shard_count, 0);
  shard_expected_.assign(config_.shard_count, 0);

  std::vector<std::string> resumed;
  if (config_.resume) {
    const util::JournalContents contents =
        util::read_journal(config_.journal_path);
    for (std::size_t i = 0; i < contents.records.size(); ++i) {
      const JsonValue& record = contents.records[i];
      const std::string& line = contents.lines[i];
      const std::string& type = record.get("type").as_string();
      if (i == 0) {
        if (type != "meta")
          throw util::ShardError("master journal " + config_.journal_path +
                                 " does not start with a meta record");
        const std::string field = config_.validate(config_.meta, line);
        if (!field.empty())
          throw util::ShardError("master journal " + config_.journal_path +
                                 " belongs to a different campaign (field '" +
                                 field + "' differs); refusing to resume");
        resumed.push_back(line);
        continue;
      }
      if (type == "meta")
        throw util::ShardError("master journal " + config_.journal_path +
                               " has a second meta record");
      if (type == "macro") {
        const std::string& name = record.get("macro").as_string();
        auto it = macro_lines_.find(name);
        if (it != macro_lines_.end())
          throw util::InvalidInputError("master journal " +
                                        config_.journal_path +
                                        ": duplicate macro record for '" +
                                        name + "'");
        macro_lines_[name] = line;
        note_macro(name, record.get("fault_classes").as_size());
        resumed.push_back(line);
        continue;
      }
      if (type == "class") {
        const std::string& name = record.get("macro").as_string();
        const std::size_t index = record.get("index").as_size();
        bool byte_mismatch = false;
        if (!note_class(name, index, line, byte_mismatch))
          throw util::InvalidInputError(
              "master journal " + config_.journal_path +
              ": duplicate class record (macro '" + name + "' class " +
              std::to_string(index) + ")");
        ++shard_received_[index % config_.shard_count];
        ++stats_.classes_received;
        resumed.push_back(line);
        continue;
      }
      throw util::InvalidInputError("master journal " + config_.journal_path +
                                    ": unknown record type '" + type + "'");
    }
  }

  journal_ = std::make_unique<util::JournalWriter>(
      config_.journal_path, config_.resume,
      std::max<std::size_t>(1, config_.journal_sync));
  if (resumed.empty()) journal_->append(config_.meta);

  // Shards fully covered by the resumed journal settle immediately.
  if (macros_known_)
    for (std::size_t s = 0; s < config_.shard_count; ++s)
      if (shard_received_[s] == shard_expected_[s]) table_.mark_done(s);
}

std::size_t DispatchCore::owned_classes(std::size_t truncated,
                                        std::size_t shard) const {
  const std::size_t n = config_.shard_count;
  return truncated / n + (shard < truncated % n ? 1 : 0);
}

void DispatchCore::note_macro(const std::string& name,
                              std::size_t fault_classes) {
  std::size_t truncated = fault_classes;
  if (config_.max_classes > 0)
    truncated = std::min(truncated, config_.max_classes);
  for (std::size_t s = 0; s < config_.shard_count; ++s)
    shard_expected_[s] += owned_classes(truncated, s);
  macros_known_ = true;
  for (const std::string& m : config_.expected_macros)
    if (macro_lines_.find(m) == macro_lines_.end()) {
      macros_known_ = false;
      break;
    }
}

bool DispatchCore::note_class(const std::string& macro, std::size_t index,
                              const std::string& line, bool& byte_mismatch) {
  auto& per_macro = class_lines_[macro];
  auto it = per_macro.find(index);
  if (it != per_macro.end()) {
    byte_mismatch = it->second != line;
    return false;
  }
  per_macro[index] = line;
  byte_mismatch = false;
  return true;
}

void DispatchCore::on_connect(int conn, double now) {
  (void)now;
  conns_[conn] = Conn{};
}

void DispatchCore::on_payload(int conn, const std::string& payload,
                              double now) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  Message msg;
  try {
    msg = decode_message(payload);
  } catch (const util::ProtocolError& e) {
    violation(conn, e.what(), now);
    return;
  }
  const Conn::Role role = it->second.role;
  if (role == Conn::Role::kWorker) monitor_.beat(conn, now);

  switch (msg.type) {
    case MsgType::kHello:
      if (role != Conn::Role::kNew) {
        violation(conn, "repeated hello", now);
        return;
      }
      handle_hello(conn, msg, now);
      return;
    case MsgType::kStatus: {
      Message reply;
      reply.type = MsgType::kStatusReply;
      reply.status = status_json();
      send_msg(conn, reply);
      if (role == Conn::Role::kNew) {
        // One-shot poller: reply, then hang up.
        conns_.erase(conn);
        transport_.drop(conn);
      }
      return;
    }
    case MsgType::kHeartbeat:
      if (role != Conn::Role::kWorker) violation(conn, "heartbeat before hello", now);
      return;
    case MsgType::kRecord:
      if (role != Conn::Role::kWorker) {
        violation(conn, "record before hello", now);
        return;
      }
      handle_record(conn, msg, now);
      return;
    case MsgType::kShardDone:
      if (role != Conn::Role::kWorker) {
        violation(conn, "shard_done before hello", now);
        return;
      }
      handle_shard_done(conn, msg, now);
      return;
    case MsgType::kShardFailed:
      if (role != Conn::Role::kWorker) {
        violation(conn, "shard_failed before hello", now);
        return;
      }
      handle_shard_failed(conn, msg, now);
      return;
    default:
      violation(conn, std::string("unexpected message '") +
                          msg_type_name(msg.type) + "' from peer", now);
      return;
  }
}

void DispatchCore::handle_hello(int conn, const Message& msg, double now) {
  if (msg.protocol != kProtocolVersion) {
    Message reject;
    reject.type = MsgType::kReject;
    reject.reason = "protocol version " + std::to_string(msg.protocol) +
                    " (dispatcher speaks " +
                    std::to_string(kProtocolVersion) + ")";
    send_msg(conn, reject);
    ++stats_.rejected_workers;
    conns_.erase(conn);
    transport_.drop(conn);
    return;
  }
  const std::string field = config_.validate(config_.meta, msg.meta);
  if (!field.empty()) {
    Message reject;
    reject.type = MsgType::kReject;
    reject.reason =
        "campaign identity differs in field '" + field +
        "' -- a mismatched worker would corrupt the merged coverage";
    send_msg(conn, reject);
    ++stats_.rejected_workers;
    conns_.erase(conn);
    transport_.drop(conn);
    return;
  }
  conns_[conn].role = Conn::Role::kWorker;
  ++stats_.workers_seen;
  monitor_.track(conn, now);
  Message welcome;
  welcome.type = MsgType::kWelcome;
  welcome.worker_id = conn;
  welcome.heartbeat_ms = config_.heartbeat_ms;
  send_msg(conn, welcome);
  try_assign(now);
}

void DispatchCore::handle_record(int conn, const Message& msg, double now) {
  Conn& c = conns_[conn];
  if (!c.shard || *c.shard != msg.shard) {
    // A worker racing an in-flight abandon: its shard settled (or was
    // re-homed) while records were on the wire. Benign; drop the line.
    ++stats_.duplicate_records;
    return;
  }
  JsonValue record;
  std::string type;
  try {
    record = util::parse_json(msg.line);
    type = record.get("type").as_string();
  } catch (const util::InvalidInputError& e) {
    violation(conn, std::string("unparseable journal line: ") + e.what(),
              now);
    return;
  }
  try {
    if (type == "macro") {
      const std::string& name = record.get("macro").as_string();
      if (std::find(config_.expected_macros.begin(),
                    config_.expected_macros.end(),
                    name) == config_.expected_macros.end()) {
        violation(conn, "macro record for unexpected macro '" + name + "'",
                  now);
        return;
      }
      auto it = macro_lines_.find(name);
      if (it != macro_lines_.end()) {
        if (it->second != msg.line)
          violation(conn,
                    "macro record for '" + name +
                        "' disagrees with the copy on file "
                        "(worker determinism broken)",
                    now);
        return;
      }
      macro_lines_[name] = msg.line;
      note_macro(name, record.get("fault_classes").as_size());
      if (!finished_) journal_->append(msg.line);
      // Knowing a macro's class count can settle shards that own zero
      // remaining classes, so re-check them all.
      for (std::size_t s = 0; s < config_.shard_count; ++s)
        check_shard_completion(s, now);
      return;
    }
    if (type == "class") {
      const std::string& name = record.get("macro").as_string();
      const std::size_t index = record.get("index").as_size();
      const std::size_t owner = index % config_.shard_count;
      if (owner != msg.shard) {
        violation(conn,
                  "class " + std::to_string(index) + " of '" + name +
                      "' is owned by shard " + std::to_string(owner) +
                      ", not shard " + std::to_string(msg.shard),
                  now);
        return;
      }
      if (macro_lines_.find(name) == macro_lines_.end()) {
        violation(conn,
                  "class record for '" + name +
                      "' arrived before its macro record",
                  now);
        return;
      }
      bool byte_mismatch = false;
      if (!note_class(name, index, msg.line, byte_mismatch)) {
        if (byte_mismatch) {
          violation(conn,
                    "class " + std::to_string(index) + " of '" + name +
                        "' disagrees with the copy on file "
                        "(worker determinism broken)",
                    now);
          return;
        }
        // Speculative race: first completion won; fold silently.
        ++stats_.duplicate_records;
        return;
      }
      if (!finished_) journal_->append(msg.line);
      ++shard_received_[owner];
      ++stats_.classes_received;
      check_shard_completion(owner, now);
      return;
    }
  } catch (const util::InvalidInputError& e) {
    violation(conn, std::string("malformed journal record: ") + e.what(),
              now);
    return;
  }
  violation(conn, "journal record of type '" + type + "' over the wire",
            now);
}

void DispatchCore::check_shard_completion(std::size_t shard, double now) {
  if (!macros_known_) return;
  if (table_.info(shard).state == ShardState::kDone) return;
  if (shard_received_[shard] != shard_expected_[shard]) return;
  const std::vector<int> attached = table_.mark_done(shard);
  Message abandon;
  abandon.type = MsgType::kAbandon;
  abandon.shard = shard;
  for (int w : attached) {
    auto it = conns_.find(w);
    if (it == conns_.end()) continue;
    it->second.shard.reset();
    send_msg(w, abandon);
  }
  try_assign(now);
}

bool DispatchCore::shard_records_complete(std::size_t shard) const {
  return macros_known_ && shard_received_[shard] == shard_expected_[shard];
}

void DispatchCore::handle_shard_done(int conn, const Message& msg,
                                     double now) {
  Conn& c = conns_[conn];
  if (!c.shard || *c.shard != msg.shard) return;  // settled already; benign
  if (!shard_records_complete(msg.shard)) {
    violation(conn,
              "shard_done for shard " + std::to_string(msg.shard) +
                  " with class records missing",
              now);
    return;
  }
  // Normally the final class record already settled the shard and reset
  // this connection; reaching here means a revival path (e.g. a shard
  // completed after being declared unresolved), so release explicitly.
  c.shard.reset();
  table_.detach_worker(conn);
  check_shard_completion(msg.shard, now);
  try_assign(now);
}

void DispatchCore::handle_shard_failed(int conn, const Message& msg,
                                       double now) {
  ++stats_.shard_failures;
  Conn& c = conns_[conn];
  if (!c.shard || *c.shard != msg.shard) return;
  c.shard.reset();
  table_.detach_worker(conn);
  escalate(msg.shard, now);
  try_assign(now);
}

void DispatchCore::violation(int conn, const std::string& why, double now) {
  (void)why;
  ++stats_.protocol_errors;
  release_shard(conn, now);
  monitor_.forget(conn);
  conns_.erase(conn);
  transport_.drop(conn);
  try_assign(now);
}

void DispatchCore::release_shard(int conn, double now) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  table_.detach_worker(conn);
  if (it->second.shard) {
    const std::size_t s = *it->second.shard;
    it->second.shard.reset();
    escalate(s, now);
  }
}

void DispatchCore::escalate(std::size_t shard, double now) {
  (void)now;
  if (table_.settled(shard)) return;
  for (int w : table_.info(shard).workers) {
    auto it = conns_.find(w);
    if (it != conns_.end() && !monitor_.stalled(w))
      return;  // a live copy is still running; nothing to do
  }
  if (table_.info(shard).reissues < config_.max_reissues) {
    table_.enqueue(shard, /*reissue=*/true);
  } else {
    table_.mark_unresolved(shard);
  }
}

void DispatchCore::on_disconnect(int conn, double now) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  const bool worker = it->second.role == Conn::Role::kWorker;
  release_shard(conn, now);
  monitor_.forget(conn);
  conns_.erase(conn);
  if (worker) try_assign(now);
}

void DispatchCore::on_tick(double now) {
  for (int w : monitor_.tick(now)) {
    auto it = conns_.find(w);
    if (it == conns_.end() || !it->second.shard) continue;
    // Keep the stalled worker attached: if it was merely slow, its
    // results still win the race; the shard just gets a second runner.
    escalate(*it->second.shard, now);
  }
  try_assign(now);
}

void DispatchCore::try_assign(double now) {
  (void)now;
  for (;;) {
    const std::optional<std::size_t> next = table_.peek_assignable();
    if (!next) return;
    int chosen = -1;
    for (auto& [id, c] : conns_) {
      if (c.role != Conn::Role::kWorker) continue;
      if (c.shard) continue;
      if (monitor_.stalled(id)) continue;
      chosen = id;
      break;
    }
    if (chosen < 0) return;
    table_.pop_assignable();
    table_.attach(*next, chosen);
    conns_[chosen].shard = *next;
    Message assign;
    assign.type = MsgType::kAssign;
    assign.shard = *next;
    assign.shard_count = config_.shard_count;
    for (const auto& [macro, per_macro] : class_lines_)
      for (const auto& [index, line] : per_macro)
        if (index % config_.shard_count == *next)
          assign.completed.push_back(line);
    send_msg(chosen, assign);
  }
}

void DispatchCore::send_msg(int conn, const Message& msg) {
  transport_.send(conn, encode_message(msg));
}

bool DispatchCore::clean() const {
  return complete() && table_.count_in_state(ShardState::kUnresolved) == 0;
}

void DispatchCore::finish() {
  if (finished_) return;
  finished_ = true;
  journal_->close();
  Message bye;
  bye.type = MsgType::kBye;
  for (const auto& [id, c] : conns_) {
    (void)c;
    send_msg(id, bye);
  }
}

void DispatchCore::flush() { journal_->checkpoint(); }

std::size_t DispatchCore::connected_workers() const {
  std::size_t n = 0;
  for (const auto& [id, c] : conns_) {
    (void)id;
    if (c.role == Conn::Role::kWorker) ++n;
  }
  return n;
}

std::string DispatchCore::status_json() const {
  std::size_t expected_total = 0;
  for (std::size_t e : shard_expected_) expected_total += e;
  JsonWriter w;
  w.begin_object();
  w.key("protocol");
  w.value(kProtocolVersion);
  w.key("done");
  w.value(complete());
  w.key("clean");
  w.value(clean());
  w.key("shards");
  w.begin_object();
  w.key("total");
  w.value(table_.count());
  w.key("pending");
  w.value(table_.count_in_state(ShardState::kPending));
  w.key("active");
  w.value(table_.count_in_state(ShardState::kActive));
  w.key("done");
  w.value(table_.count_in_state(ShardState::kDone));
  w.key("unresolved");
  w.value(table_.count_in_state(ShardState::kUnresolved));
  w.end_object();
  w.key("unresolved_shards");
  w.begin_array();
  for (std::size_t s : table_.unresolved_shards()) w.value(s);
  w.end_array();
  w.key("reissues");
  w.value(static_cast<std::size_t>(table_.total_reissues()));
  w.key("workers");
  w.begin_object();
  w.key("connected");
  w.value(connected_workers());
  w.key("stalled");
  w.value(monitor_.stalled_count());
  w.key("seen");
  w.value(stats_.workers_seen);
  w.key("rejected");
  w.value(stats_.rejected_workers);
  w.end_object();
  w.key("classes");
  w.begin_object();
  w.key("received");
  w.value(stats_.classes_received);
  w.key("expected");
  w.value(expected_total);
  w.key("macros_known");
  w.value(macros_known_);
  w.key("duplicates");
  w.value(stats_.duplicate_records);
  w.end_object();
  w.key("shard_failures");
  w.value(stats_.shard_failures);
  w.key("protocol_errors");
  w.value(stats_.protocol_errors);
  w.key("journal");
  w.value(config_.journal_path);
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Socket-backed event loop.

namespace {

struct PeerConn {
  util::TcpSocket sock;
  FrameDecoder decoder;
};

class SocketTransport : public Transport {
 public:
  std::map<int, PeerConn>* peers = nullptr;
  std::vector<int>* pending_drop = nullptr;
  double io_timeout_ms = 10000.0;

  void send(int conn, const std::string& payload) override {
    auto it = peers->find(conn);
    if (it == peers->end()) return;
    std::string frame;
    try {
      frame = encode_frame(payload);
    } catch (const util::ProtocolError&) {
      pending_drop->push_back(conn);
      return;
    }
    if (!it->second.sock.write_all(frame.data(), frame.size(), io_timeout_ms))
      pending_drop->push_back(conn);
  }

  void drop(int conn) override { pending_drop->push_back(conn); }
};

}  // namespace

struct Dispatcher::Impl {
  std::map<int, PeerConn> peers;
  std::vector<int> pending_drop;
  SocketTransport transport;
  util::TcpListener listener;
  std::unique_ptr<DispatchCore> core;
  double poll_ms = 100.0;
};

Dispatcher::Dispatcher(DispatcherConfig config, std::uint16_t port,
                       bool any_interface)
    : impl_(std::make_unique<Impl>()) {
  impl_->transport.peers = &impl_->peers;
  impl_->transport.pending_drop = &impl_->pending_drop;
  impl_->listener = util::TcpListener::bind(port, any_interface);
  impl_->poll_ms = std::min(100.0, std::max(10.0, config.heartbeat_ms / 4.0));
  impl_->core =
      std::make_unique<DispatchCore>(std::move(config), impl_->transport);
}

Dispatcher::~Dispatcher() = default;

std::uint16_t Dispatcher::port() const { return impl_->listener.port(); }

DispatchCore& Dispatcher::core() { return *impl_->core; }

int Dispatcher::run(const std::function<void()>& on_idle) {
  Impl& im = *impl_;
  char buf[64 * 1024];
  for (;;) {
    if (util::shutdown_requested()) {
      // Graceful interrupt: flush the master journal so everything
      // received so far survives, then report the partial state.
      im.core->flush();
      return util::shutdown_exit_status();
    }
    if (im.core->complete()) {
      im.core->finish();
      for (auto& [fd, peer] : im.peers) peer.sock.close();
      im.peers.clear();
      return im.core->clean() ? 0 : 3;
    }

    std::vector<util::PollItem> items;
    items.push_back({im.listener.fd(), false, false});
    for (const auto& [fd, peer] : im.peers) items.push_back({fd, false, false});
    util::poll_readable(items, im.poll_ms);

    const double now = util::mono_ms();
    if (items[0].readable) {
      for (;;) {
        util::TcpSocket sock = im.listener.accept();
        if (!sock.valid()) break;
        const int fd = sock.fd();
        im.peers[fd].sock = std::move(sock);
        im.core->on_connect(fd, now);
      }
    }

    std::vector<int> closed;
    for (std::size_t i = 1; i < items.size(); ++i) {
      if (!items[i].readable && !items[i].hangup) continue;
      const int fd = items[i].fd;
      auto it = im.peers.find(fd);
      if (it == im.peers.end()) continue;
      bool dead = false;
      for (;;) {
        std::size_t got = 0;
        util::ReadStatus status = util::ReadStatus::kClosed;
        try {
          status = it->second.sock.read_some(buf, sizeof(buf), got);
        } catch (const util::IoError&) {
          dead = true;
          break;
        }
        if (status == util::ReadStatus::kWouldBlock) break;
        if (status == util::ReadStatus::kClosed) {
          dead = true;
          break;
        }
        try {
          it->second.decoder.feed(buf, got);
        } catch (const util::ProtocolError&) {
          dead = true;  // oversized length prefix: unrecoverable stream
          break;
        }
        while (std::optional<std::string> payload = it->second.decoder.next())
          im.core->on_payload(fd, *payload, now);
        if (im.peers.find(fd) == im.peers.end()) break;  // dropped itself
      }
      if (dead) closed.push_back(fd);
    }
    for (int fd : closed) {
      im.core->on_disconnect(fd, now);
      auto it = im.peers.find(fd);
      if (it != im.peers.end()) {
        it->second.sock.close();
        im.peers.erase(it);
      }
    }

    im.core->on_tick(now);

    // Connections the core asked to drop (rejects, violations) or that
    // failed a send: close them; on_disconnect is a no-op for conns the
    // core already forgot.
    std::vector<int> drops;
    drops.swap(im.pending_drop);
    for (int fd : drops) {
      auto it = im.peers.find(fd);
      if (it == im.peers.end()) continue;
      im.core->on_disconnect(fd, util::mono_ms());
      it->second.sock.close();
      im.peers.erase(it);
    }

    if (on_idle) on_idle();
  }
}

}  // namespace dot::dispatch
