// Message schema of the dispatch wire protocol (payloads inside the
// length-prefixed frames of framing.hpp).
//
// Every message is one JSON object with a "type" field. The handshake
// carries the campaign's journal meta record verbatim (as an embedded
// string), so the dispatcher validates a connecting worker with the
// exact meta-mismatch interlock the journal layer uses for resume/merge
// -- a worker built for a different seed, defect budget, solver mode or
// macro geometry is rejected by field name before any work is assigned.
//
//   worker -> dispatcher    hello, heartbeat, record, shard_done,
//                           shard_failed
//   dispatcher -> worker    welcome | reject, assign, abandon, bye
//   client -> dispatcher    status
//   dispatcher -> client    status_reply
//
// Journal record lines and meta records travel as embedded JSON strings
// (not nested objects): the dispatcher appends record lines to the
// master journal byte-identically, which is what makes the dispatched
// merge bit-comparable to a single-host run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dot::dispatch {

/// Bumped on any wire-incompatible change; hello/welcome carry it and
/// either side refuses a mismatch.
inline constexpr int kProtocolVersion = 1;

enum class MsgType {
  kHello,        ///< worker: protocol version + campaign meta record
  kWelcome,      ///< dispatcher: accepted; worker id + heartbeat interval
  kReject,       ///< dispatcher: refused (mismatched meta, bad version)
  kAssign,       ///< dispatcher: run shard K of N; completed tail enclosed
  kHeartbeat,    ///< worker: liveness beacon
  kRecord,       ///< worker: one completed journal record line
  kShardDone,    ///< worker: shard fully evaluated
  kShardFailed,  ///< worker: shard aborted (error/interrupt); reason enclosed
  kAbandon,      ///< dispatcher: stop working on shard (race lost)
  kBye,          ///< dispatcher: campaign complete, disconnect
  kStatus,       ///< client: poll request
  kStatusReply,  ///< dispatcher: status JSON for pollers
};

const char* msg_type_name(MsgType type);

/// One decoded message; only the fields relevant to `type` are set.
struct Message {
  MsgType type = MsgType::kHeartbeat;
  int protocol = kProtocolVersion;     ///< hello / welcome
  std::string meta;                    ///< hello: journal meta record line
  int worker_id = -1;                  ///< welcome
  double heartbeat_ms = 0.0;           ///< welcome: expected beacon interval
  std::string reason;                  ///< reject / shard_failed
  std::size_t shard = 0;               ///< assign / record / done / failed / abandon
  std::size_t shard_count = 0;         ///< assign
  std::vector<std::string> completed;  ///< assign: journal lines to skip
  std::string line;                    ///< record: journal record line
  std::string status;                  ///< status_reply: status JSON
};

std::string encode_message(const Message& msg);

/// Decodes one frame payload. Throws util::ProtocolError on malformed
/// JSON, an unknown type, or missing fields -- the connection that sent
/// it is dropped, never interpreted loosely.
Message decode_message(const std::string& payload);

}  // namespace dot::dispatch
