#include "dispatch/protocol.hpp"

#include "util/error.hpp"
#include "util/json.hpp"

namespace dot::dispatch {

using util::JsonValue;
using util::JsonWriter;

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kReject: return "reject";
    case MsgType::kAssign: return "assign";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kRecord: return "record";
    case MsgType::kShardDone: return "shard_done";
    case MsgType::kShardFailed: return "shard_failed";
    case MsgType::kAbandon: return "abandon";
    case MsgType::kBye: return "bye";
    case MsgType::kStatus: return "status";
    case MsgType::kStatusReply: return "status_reply";
  }
  return "unknown";
}

std::string encode_message(const Message& msg) {
  JsonWriter w;
  w.begin_object();
  w.key("type");
  w.value(msg_type_name(msg.type));
  switch (msg.type) {
    case MsgType::kHello:
      w.key("protocol");
      w.value(msg.protocol);
      w.key("meta");
      w.value(msg.meta);
      break;
    case MsgType::kWelcome:
      w.key("protocol");
      w.value(msg.protocol);
      w.key("worker_id");
      w.value(msg.worker_id);
      w.key("heartbeat_ms");
      w.value(msg.heartbeat_ms);
      break;
    case MsgType::kReject:
    case MsgType::kShardFailed:
      w.key("reason");
      w.value(msg.reason);
      if (msg.type == MsgType::kShardFailed) {
        w.key("shard");
        w.value(msg.shard);
      }
      break;
    case MsgType::kAssign:
      w.key("shard");
      w.value(msg.shard);
      w.key("shard_count");
      w.value(msg.shard_count);
      w.key("completed");
      w.begin_array();
      for (const std::string& line : msg.completed) w.value(line);
      w.end_array();
      break;
    case MsgType::kRecord:
      w.key("shard");
      w.value(msg.shard);
      w.key("line");
      w.value(msg.line);
      break;
    case MsgType::kShardDone:
    case MsgType::kAbandon:
      w.key("shard");
      w.value(msg.shard);
      break;
    case MsgType::kStatusReply:
      w.key("status");
      w.value(msg.status);
      break;
    case MsgType::kHeartbeat:
    case MsgType::kBye:
    case MsgType::kStatus:
      break;
  }
  w.end_object();
  return w.str();
}

Message decode_message(const std::string& payload) {
  JsonValue v;
  try {
    v = util::parse_json(payload);
  } catch (const util::InvalidInputError& e) {
    throw util::ProtocolError(std::string("unparseable message: ") +
                              e.what());
  }
  if (!v.is_object())
    throw util::ProtocolError("message is not a JSON object");

  Message msg;
  std::string type;
  try {
    type = v.get("type").as_string();
    if (type == "hello") {
      msg.type = MsgType::kHello;
      msg.protocol = static_cast<int>(v.get("protocol").as_size());
      msg.meta = v.get("meta").as_string();
    } else if (type == "welcome") {
      msg.type = MsgType::kWelcome;
      msg.protocol = static_cast<int>(v.get("protocol").as_size());
      msg.worker_id = static_cast<int>(v.get("worker_id").as_size());
      msg.heartbeat_ms = v.get("heartbeat_ms").as_number();
    } else if (type == "reject") {
      msg.type = MsgType::kReject;
      msg.reason = v.get("reason").as_string();
    } else if (type == "assign") {
      msg.type = MsgType::kAssign;
      msg.shard = v.get("shard").as_size();
      msg.shard_count = v.get("shard_count").as_size();
      for (const JsonValue& line : v.get("completed").items())
        msg.completed.push_back(line.as_string());
    } else if (type == "heartbeat") {
      msg.type = MsgType::kHeartbeat;
    } else if (type == "record") {
      msg.type = MsgType::kRecord;
      msg.shard = v.get("shard").as_size();
      msg.line = v.get("line").as_string();
    } else if (type == "shard_done") {
      msg.type = MsgType::kShardDone;
      msg.shard = v.get("shard").as_size();
    } else if (type == "shard_failed") {
      msg.type = MsgType::kShardFailed;
      msg.shard = v.get("shard").as_size();
      msg.reason = v.get("reason").as_string();
    } else if (type == "abandon") {
      msg.type = MsgType::kAbandon;
      msg.shard = v.get("shard").as_size();
    } else if (type == "bye") {
      msg.type = MsgType::kBye;
    } else if (type == "status") {
      msg.type = MsgType::kStatus;
    } else if (type == "status_reply") {
      msg.type = MsgType::kStatusReply;
      msg.status = v.get("status").as_string();
    } else {
      throw util::ProtocolError("unknown message type '" + type + "'");
    }
  } catch (const util::InvalidInputError& e) {
    throw util::ProtocolError("malformed '" + type +
                              "' message: " + e.what());
  }
  return msg;
}

}  // namespace dot::dispatch
