// Worker side of the dispatch protocol: connects to a dispatcher,
// presents the campaign identity, and runs assigned shards through a
// caller-supplied ShardRunner, streaming each completed journal record
// line back as it lands.
//
// The runner is deliberately opaque to this layer (dot_dispatch knows
// journal lines, not fault models); the flashadc glue wraps the real
// campaign evaluator. A background thread owns the socket reads and
// the heartbeat beacon so a long class evaluation never starves the
// liveness protocol; abandon messages flip a flag that the record sink
// converts into an AbandonShard unwind at the next record boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dot::dispatch {

/// One shard assignment from the dispatcher. `completed` holds the
/// journal class-record lines already folded into the master journal
/// (the journal tail of a predecessor worker); the runner seeds its
/// resume state from them and only evaluates -- and emits -- the rest.
struct ShardAssignment {
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  std::vector<std::string> completed;
};

/// Thrown out of a ShardRunner (via the sink) when the dispatcher
/// abandoned the shard or the process is shutting down: unwinds the
/// evaluation without treating it as a failure.
class AbandonShard : public std::runtime_error {
 public:
  explicit AbandonShard(const std::string& why)
      : std::runtime_error("shard abandoned: " + why) {}
};

/// Callback handed to the runner for streaming results. emit() sends
/// one journal record line to the dispatcher; it throws AbandonShard
/// when the shard should be dropped (dispatcher abandon, shutdown
/// signal, lost connection), so call it at every record boundary.
struct ShardSink {
  std::function<void(const std::string& line)> emit;
};

/// Evaluates one shard, emitting every journal record (macro records
/// included) through the sink. Must be deterministic: two workers
/// handed the same assignment must emit byte-identical record lines.
using ShardRunner =
    std::function<void(const ShardAssignment&, const ShardSink&)>;

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Campaign identity: journal meta record line (single-shard view).
  std::string meta;
  ShardRunner runner;
  double connect_timeout_ms = 5000.0;
  /// Per-write stall cap; a dispatcher gone silent for this long kills
  /// the worker rather than wedging it.
  double io_timeout_ms = 30000.0;
};

struct WorkerReport {
  std::size_t shards_completed = 0;
  std::size_t shards_abandoned = 0;
  std::size_t shards_failed = 0;
  /// Ended by SIGINT/SIGTERM (the current shard was reported failed
  /// with reason "interrupted"; exit 128+sig).
  bool interrupted = false;
};

/// Runs the worker loop until the dispatcher says bye (normal end) or a
/// shutdown signal arrives. Throws util::ShardError when the dispatcher
/// rejects the handshake (mismatched campaign identity or protocol) and
/// util::IoError when the connection dies.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace dot::dispatch
