// Length-prefixed message framing for the dispatch wire protocol.
//
// A frame is a 4-byte big-endian payload length followed by the payload
// bytes (one JSON document; the framing layer treats it as opaque).
// TCP delivers a byte stream, not messages, so the decoder is fully
// incremental: feed() accepts arbitrary splits -- a frame torn across
// ten 1-byte reads reassembles exactly like one delivered whole -- and
// next() pops complete frames in order. An incomplete frame simply
// waits for more bytes; at connection close the partial tail is dropped
// by the caller the same way the journal reader drops a torn final
// record. A length above kMaxFrameBytes means a corrupt or hostile
// stream and throws ProtocolError (the connection is unrecoverable:
// resynchronizing inside a byte stream is guesswork).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace dot::dispatch {

/// Upper bound on one frame's payload. Assign messages carry a shard's
/// completed journal tail, so the cap is generous; anything larger is
/// corruption, not data.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Encodes one payload as a wire frame (4-byte big-endian length +
/// bytes). Throws ProtocolError when the payload exceeds kMaxFrameBytes.
std::string encode_frame(const std::string& payload);

/// Incremental frame reassembler; one per connection.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream; complete frames become
  /// retrievable via next(). Throws ProtocolError on an oversized
  /// length prefix.
  void feed(const char* data, std::size_t n);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete payload, or nullopt when none is buffered.
  std::optional<std::string> next();

  /// Bytes of an incomplete trailing frame still waiting for input
  /// (0 = the stream is at a clean frame boundary). Used to report torn
  /// tails when a peer disconnects mid-frame.
  std::size_t partial_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::deque<std::string> ready_;
};

}  // namespace dot::dispatch
