#include "dispatch/framing.hpp"

#include "util/error.hpp"

namespace dot::dispatch {

std::string encode_frame(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes)
    throw util::ProtocolError("frame payload of " +
                              std::to_string(payload.size()) +
                              " bytes exceeds the frame cap");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
  for (;;) {
    if (buffer_.size() < 4) return;
    const auto b = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t len = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
    if (len > kMaxFrameBytes)
      throw util::ProtocolError("frame length " + std::to_string(len) +
                                " exceeds the frame cap (corrupt stream)");
    if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return;
    ready_.emplace_back(buffer_, 4, len);
    buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  std::string payload = std::move(ready_.front());
  ready_.pop_front();
  return payload;
}

}  // namespace dot::dispatch
