#include "dispatch/liveness.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dot::dispatch {

void HeartbeatMonitor::track(int id, double now) {
  entries_[id] = Entry{now, false};
}

void HeartbeatMonitor::forget(int id) { entries_.erase(id); }

bool HeartbeatMonitor::beat(int id, double now) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const bool revived = it->second.stalled;
  it->second.last_seen = now;
  it->second.stalled = false;
  return revived;
}

bool HeartbeatMonitor::stalled(int id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.stalled;
}

std::size_t HeartbeatMonitor::stalled_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_)
    if (entry.stalled) ++n;
  return n;
}

std::vector<int> HeartbeatMonitor::tick(double now) {
  std::vector<int> expired;
  if (timeout_ms_ <= 0.0) return expired;
  for (auto& [id, entry] : entries_) {
    if (entry.stalled) continue;
    if (now - entry.last_seen >= timeout_ms_) {
      entry.stalled = true;
      expired.push_back(id);
    }
  }
  return expired;
}

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kPending: return "pending";
    case ShardState::kActive: return "active";
    case ShardState::kDone: return "done";
    case ShardState::kUnresolved: return "unresolved";
  }
  return "unknown";
}

ShardTable::ShardTable(std::size_t count) : shards_(count) {
  for (std::size_t s = 0; s < count; ++s) {
    shards_[s].queued = true;
    queue_.push_back(s);
  }
}

const ShardInfo& ShardTable::info(std::size_t shard) const {
  if (shard >= shards_.size())
    throw util::InvalidInputError("shard index " + std::to_string(shard) +
                                  " out of range");
  return shards_[shard];
}

std::optional<std::size_t> ShardTable::peek_assignable() const {
  for (std::size_t s : queue_)
    if (!settled(s)) return s;
  return std::nullopt;
}

void ShardTable::pop_assignable() {
  while (!queue_.empty()) {
    const std::size_t s = queue_.front();
    queue_.pop_front();
    if (!settled(s)) {
      shards_[s].queued = false;
      return;
    }
    shards_[s].queued = false;
  }
}

void ShardTable::attach(std::size_t shard, int worker) {
  ShardInfo& s = shards_.at(shard);
  if (s.state == ShardState::kDone || s.state == ShardState::kUnresolved)
    return;
  s.state = ShardState::kActive;
  if (std::find(s.workers.begin(), s.workers.end(), worker) ==
      s.workers.end())
    s.workers.push_back(worker);
  if (s.queued) {
    s.queued = false;
    queue_.erase(std::remove(queue_.begin(), queue_.end(), shard),
                 queue_.end());
  }
}

std::vector<std::size_t> ShardTable::detach_worker(int worker) {
  std::vector<std::size_t> held;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto& workers = shards_[s].workers;
    auto it = std::find(workers.begin(), workers.end(), worker);
    if (it != workers.end()) {
      workers.erase(it);
      held.push_back(s);
    }
  }
  return held;
}

std::vector<int> ShardTable::mark_done(std::size_t shard) {
  ShardInfo& s = shards_.at(shard);
  std::vector<int> attached;
  if (s.state == ShardState::kDone) return attached;
  attached = s.workers;
  s.workers.clear();
  s.state = ShardState::kDone;
  if (s.queued) {
    s.queued = false;
    queue_.erase(std::remove(queue_.begin(), queue_.end(), shard),
                 queue_.end());
  }
  return attached;
}

void ShardTable::mark_unresolved(std::size_t shard) {
  ShardInfo& s = shards_.at(shard);
  if (s.state == ShardState::kDone) return;
  s.state = ShardState::kUnresolved;
  s.workers.clear();
  if (s.queued) {
    s.queued = false;
    queue_.erase(std::remove(queue_.begin(), queue_.end(), shard),
                 queue_.end());
  }
}

void ShardTable::enqueue(std::size_t shard, bool reissue) {
  ShardInfo& s = shards_.at(shard);
  if (settled(shard)) return;
  if (reissue) ++s.reissues;
  if (s.queued) return;
  s.queued = true;
  if (reissue)
    queue_.push_front(shard);
  else
    queue_.push_back(shard);
}

bool ShardTable::settled(std::size_t shard) const {
  const ShardState st = shards_.at(shard).state;
  return st == ShardState::kDone || st == ShardState::kUnresolved;
}

bool ShardTable::all_settled() const {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (!settled(s)) return false;
  return true;
}

std::size_t ShardTable::count_in_state(ShardState state) const {
  std::size_t n = 0;
  for (const ShardInfo& s : shards_)
    if (s.state == state) ++n;
  return n;
}

std::vector<std::size_t> ShardTable::unresolved_shards() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (shards_[s].state == ShardState::kUnresolved) out.push_back(s);
  return out;
}

int ShardTable::total_reissues() const {
  int n = 0;
  for (const ShardInfo& s : shards_) n += s.reissues;
  return n;
}

}  // namespace dot::dispatch
