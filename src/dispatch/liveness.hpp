// Liveness bookkeeping for the dispatcher: per-worker heartbeat expiry
// and the per-shard assignment/escalation table. Both are pure state
// machines over caller-supplied timestamps -- no sockets, no clock --
// so the escalation ladder is unit-testable with a synthetic clock.
//
// The ladder a shard climbs (driven by DispatchCore):
//
//   pending --assign--> active --records complete / shard_done--> done
//      ^                   |
//      |            heartbeat miss or disconnect of its last live worker
//      |                   v
//      +---- re-queued (speculative re-issue; original worker stays
//            attached -- if it was merely slow, its results still win
//            the race) ... until `max_reissues` re-issues are spent,
//            then --> unresolved (structured give-up, never silent).
//
// Re-issued shards are queued ahead of fresh ones so stragglers surface
// early instead of at the tail of the campaign.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace dot::dispatch {

/// Tracks the last-seen time of each worker against a timeout. Any
/// message counts as a beat; a stalled worker that speaks again is
/// revived (partitions heal).
class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(double timeout_ms) : timeout_ms_(timeout_ms) {}

  void track(int id, double now);
  void forget(int id);
  /// Records a beat; returns true when this revived a stalled worker.
  bool beat(int id, double now);
  bool stalled(int id) const;
  std::size_t stalled_count() const;

  /// Advances time; returns the ids that crossed the timeout since the
  /// last call (each id is reported once per stall episode).
  std::vector<int> tick(double now);

 private:
  struct Entry {
    double last_seen = 0.0;
    bool stalled = false;
  };
  double timeout_ms_;
  std::map<int, Entry> entries_;
};

enum class ShardState { kPending, kActive, kDone, kUnresolved };

const char* shard_state_name(ShardState state);

struct ShardInfo {
  ShardState state = ShardState::kPending;
  /// Times the shard was handed to an additional/replacement worker.
  int reissues = 0;
  /// Attached workers (first assignee + speculative re-issues).
  std::vector<int> workers;
  bool queued = false;
};

class ShardTable {
 public:
  explicit ShardTable(std::size_t count);

  std::size_t count() const { return shards_.size(); }
  const ShardInfo& info(std::size_t shard) const;

  /// Front of the assignment queue without popping (nullopt = empty).
  std::optional<std::size_t> peek_assignable() const;
  void pop_assignable();

  /// Attaches a worker (marks the shard active, dequeues it).
  void attach(std::size_t shard, int worker);
  /// Detaches a worker from every shard; returns the shards it held.
  std::vector<std::size_t> detach_worker(int worker);

  /// Marks done; returns the workers that were still attached (the
  /// dispatcher abandons the losers of a speculative race). Idempotent.
  std::vector<int> mark_done(std::size_t shard);
  void mark_unresolved(std::size_t shard);

  /// Queues the shard for (re-)assignment. Re-issues go to the front of
  /// the queue and bump the reissue counter. No-op when already queued
  /// or settled.
  void enqueue(std::size_t shard, bool reissue);

  bool settled(std::size_t shard) const;
  /// True once every shard is done or unresolved.
  bool all_settled() const;

  std::size_t count_in_state(ShardState state) const;
  std::vector<std::size_t> unresolved_shards() const;
  int total_reissues() const;

 private:
  std::vector<ShardInfo> shards_;
  std::deque<std::size_t> queue_;
};

}  // namespace dot::dispatch
