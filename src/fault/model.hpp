// Circuit-level fault models: pure netlist transformations implementing
// the paper's section 3.2 ("Circuit-level fault models").
//
//  - metal/poly/diffusion shorts      -> bridge resistor (material R)
//  - extra contacts                   -> 2 Ohm bridge
//  - gate-oxide / junction / thick-   -> 2 kOhm bridge; gate-oxide in
//    oxide pinholes                      three variants (to source, to
//                                        drain, to channel), worst case
//                                        chosen by the fault simulator
//  - opens                            -> node split
//  - new devices                      -> minimum-size parasitic MOSFET
//  - shorted devices                  -> drain-source bridge
//  - non-catastrophic ("near-miss")   -> 500 Ohm parallel 1 fF, derived
//    variants of shorts/extra contacts   from the catastrophic faults
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "spice/netlist.hpp"

namespace dot::fault {

struct FaultModelOptions {
  double metal_short_ohms = 0.2;
  double poly_short_ohms = 50.0;
  double diffusion_short_ohms = 100.0;
  double extra_contact_ohms = 2.0;
  double pinhole_ohms = 2000.0;
  double shorted_device_ohms = 100.0;

  /// Non-catastrophic near-miss model (paper: 500 Ohm || 1 fF).
  double noncat_ohms = 500.0;
  double noncat_farads = 1e-15;

  /// Parasitic new-device geometry.
  double new_device_w = 1.6e-6;
  double new_device_l = 1.0e-6;
  spice::MosModel new_device_model{};

  /// Net name of the positive supply (junction pinholes in the n-well
  /// leak here; parasitic PMOS bulks tie here).
  std::string vdd_net = "vdd";
};

/// Number of model variants for a fault (gate-oxide pinholes have 3:
/// gate-source, gate-drain, gate-channel; everything else has 1). The
/// fault simulator simulates all variants and keeps the worst case, as
/// the paper does for gate-oxide pinholes.
int model_variant_count(const CircuitFault& fault);

/// True when a non-catastrophic near-miss variant exists (the paper
/// evolves them from catastrophic shorts and extra contacts only; the
/// other faults are already high-ohmic).
bool supports_noncatastrophic(const CircuitFault& fault);

/// Returns a faulty copy of `good`. `variant` selects among
/// model_variant_count() alternatives; `non_catastrophic` switches
/// shorts / extra contacts to the 500 Ohm || 1 fF near-miss model.
/// Injected devices are named with the "FLT" prefix.
spice::Netlist apply_fault(const spice::Netlist& good,
                           const CircuitFault& fault,
                           const FaultModelOptions& options, int variant = 0,
                           bool non_catastrophic = false);

}  // namespace dot::fault
