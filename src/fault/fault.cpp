#include "fault/fault.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/error.hpp"

namespace dot::fault {

const std::string& fault_kind_name(FaultKind kind) {
  static const std::array<std::string, kFaultKindCount> names = {
      "short",          "extra contact",       "gate oxide pinhole",
      "junction pinhole", "thick oxide pinhole", "open",
      "new device",     "shorted device"};
  return names[static_cast<std::size_t>(kind)];
}

FaultKind parse_fault_kind(const std::string& name) {
  for (int i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (fault_kind_name(kind) == name) return kind;
  }
  throw util::InvalidInputError("unknown fault kind: " + name);
}

std::string CircuitFault::key() const {
  std::string k = std::to_string(static_cast<int>(kind));
  k += '|';
  // Nets are stored sorted; join them.
  for (const auto& net : nets) {
    k += net;
    k += ',';
  }
  k += '|';
  k += device;
  k += '|';
  k += gate_net;
  k += '|';
  k += to_vdd ? '1' : '0';
  k += '|';
  k += std::to_string(static_cast<int>(material));
  k += '|';
  // Opens with different tap partitions are distinct faults.
  std::vector<std::string> tap_keys;
  tap_keys.reserve(isolated_taps.size());
  for (const auto& tap : isolated_taps)
    tap_keys.push_back(tap.device + '#' + std::to_string(tap.terminal));
  std::sort(tap_keys.begin(), tap_keys.end());
  for (const auto& tk : tap_keys) {
    k += tk;
    k += ',';
  }
  return k;
}

std::vector<FaultClass> collapse_faults(
    const std::vector<CircuitFault>& faults) {
  std::unordered_map<std::string, std::size_t> index;
  std::vector<FaultClass> classes;
  for (const auto& fault : faults) {
    const std::string key = fault.key();
    auto [it, inserted] = index.emplace(key, classes.size());
    if (inserted) classes.push_back(FaultClass{fault, 1});
    else ++classes[it->second].count;
  }
  std::stable_sort(classes.begin(), classes.end(),
                   [](const FaultClass& a, const FaultClass& b) {
                     return a.count > b.count;
                   });
  return classes;
}

std::size_t total_fault_count(const std::vector<FaultClass>& classes) {
  std::size_t total = 0;
  for (const auto& c : classes) total += c.count;
  return total;
}

}  // namespace dot::fault
