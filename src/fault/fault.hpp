// Circuit-level fault representation, following the taxonomy of the
// paper's Table 1: shorts, extra contacts, gate-oxide / junction /
// thick-oxide pinholes, opens, new devices and shorted devices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dot::fault {

enum class FaultKind {
  kShort,             ///< Extra material bridging >= 2 nets on one layer.
  kExtraContact,      ///< Spurious contact/via joining two layers' nets.
  kGateOxidePinhole,  ///< Gate leaks to channel/source/drain.
  kJunctionPinhole,   ///< Diffusion leaks to substrate or well.
  kThickOxidePinhole, ///< Field/interlevel oxide leaks between layers.
  kOpen,              ///< Missing material splits a net.
  kNewDevice,         ///< Extra active under existing poly: parasitic MOS.
  kShortedDevice,     ///< Bridge across an existing device's channel.
};
inline constexpr int kFaultKindCount = 8;

const std::string& fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name (journal decode); throws
/// util::InvalidInputError on an unknown name.
FaultKind parse_fault_kind(const std::string& name);

/// Material of a bridging defect; selects the short resistance.
enum class BridgeMaterial {
  kMetal,
  kPoly,
  kDiffusion,
  kContact,
  kOxide,   ///< Any pinhole path.
  kNone,    ///< Opens / device faults.
};

/// Terminal reference used by open faults: which device terminals end up
/// on the disconnected side of the split net.
struct TapRef {
  std::string device;
  int terminal = 0;

  bool operator==(const TapRef&) const = default;
};

/// One extracted circuit-level fault.
struct CircuitFault {
  FaultKind kind = FaultKind::kShort;
  /// Nets involved, sorted. Shorts/extra contacts/thick-oxide: the
  /// bridged nets (2 or more). Junction pinhole / open: the single net.
  /// New device: the two bridged diffusion nets.
  std::vector<std::string> nets;
  /// Affected device for gate-oxide pinholes and shorted devices.
  std::string device;
  /// Controlling net of a parasitic new device.
  std::string gate_net;
  /// Junction pinhole: leaks to the well (VDD) instead of substrate;
  /// new device: parasitic PMOS (inside the n-well) instead of NMOS.
  bool to_vdd = false;
  BridgeMaterial material = BridgeMaterial::kNone;
  /// Open faults: taps stranded on the far side of the break.
  std::vector<TapRef> isolated_taps;

  /// Canonical key: equal keys <=> circuit-level equivalent faults.
  std::string key() const;
};

/// Equivalence class of collapsed faults. `count` is the class
/// magnitude -- the number of simulated defects that produced this
/// fault, which the paper uses as the likelihood of the fault.
struct FaultClass {
  CircuitFault representative;
  std::size_t count = 0;
};

/// Collapses circuit-level equivalent faults (paper fig. 1, "fault
/// collapsing"). Classes come out in descending count order.
std::vector<FaultClass> collapse_faults(const std::vector<CircuitFault>& faults);

/// Total fault count across classes.
std::size_t total_fault_count(const std::vector<FaultClass>& classes);

}  // namespace dot::fault
