#include "fault/model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dot::fault {
namespace {

double bridge_resistance(const CircuitFault& fault,
                         const FaultModelOptions& opt) {
  switch (fault.kind) {
    case FaultKind::kShort:
      switch (fault.material) {
        case BridgeMaterial::kMetal:
          return opt.metal_short_ohms;
        case BridgeMaterial::kPoly:
          return opt.poly_short_ohms;
        case BridgeMaterial::kDiffusion:
          return opt.diffusion_short_ohms;
        default:
          return opt.poly_short_ohms;
      }
    case FaultKind::kExtraContact:
      return opt.extra_contact_ohms;
    case FaultKind::kGateOxidePinhole:
    case FaultKind::kJunctionPinhole:
    case FaultKind::kThickOxidePinhole:
      return opt.pinhole_ohms;
    case FaultKind::kShortedDevice:
      return opt.shorted_device_ohms;
    default:
      throw util::InvalidInputError(
          "bridge_resistance: fault has no bridge model");
  }
}

/// Adds a bridge between two existing nodes: a resistor, or the
/// near-miss RC pair for non-catastrophic variants.
void add_bridge(spice::Netlist& netlist, const std::string& tag,
                const std::string& node_a, const std::string& node_b,
                double ohms, const FaultModelOptions& opt,
                bool non_catastrophic) {
  if (non_catastrophic) {
    netlist.add_resistor("FLTR_" + tag, node_a, node_b, opt.noncat_ohms);
    netlist.add_capacitor("FLTC_" + tag, node_a, node_b, opt.noncat_farads);
  } else {
    netlist.add_resistor("FLTR_" + tag, node_a, node_b, ohms);
  }
}

void require_node(const spice::Netlist& netlist, const std::string& name) {
  if (!netlist.find_node(name) && name != "0" && name != "gnd")
    throw util::InvalidInputError("apply_fault: fault references net '" +
                                  name + "' absent from the netlist");
}

const spice::Mosfet& find_mosfet(const spice::Netlist& netlist,
                                 const std::string& name) {
  const auto* device = netlist.find_device(name);
  if (device == nullptr)
    throw util::InvalidInputError("apply_fault: no device named " + name);
  const auto* mos = std::get_if<spice::Mosfet>(device);
  if (mos == nullptr)
    throw util::InvalidInputError("apply_fault: " + name +
                                  " is not a MOSFET");
  return *mos;
}

}  // namespace

int model_variant_count(const CircuitFault& fault) {
  return fault.kind == FaultKind::kGateOxidePinhole ? 3 : 1;
}

bool supports_noncatastrophic(const CircuitFault& fault) {
  return fault.kind == FaultKind::kShort ||
         fault.kind == FaultKind::kExtraContact;
}

spice::Netlist apply_fault(const spice::Netlist& good,
                           const CircuitFault& fault,
                           const FaultModelOptions& opt, int variant,
                           bool non_catastrophic) {
  if (variant < 0 || variant >= model_variant_count(fault))
    throw util::InvalidInputError("apply_fault: bad variant index");
  if (non_catastrophic && !supports_noncatastrophic(fault))
    throw util::InvalidInputError(
        "apply_fault: fault kind has no non-catastrophic form");

  spice::Netlist out = good;
  switch (fault.kind) {
    case FaultKind::kShort:
    case FaultKind::kExtraContact:
    case FaultKind::kThickOxidePinhole: {
      if (fault.nets.size() < 2)
        throw util::InvalidInputError("apply_fault: short needs >= 2 nets");
      // Star of bridges from the first net to the others (multi-net
      // shorts arise when one defect touches three or more wires).
      for (const auto& net : fault.nets) require_node(out, net);
      const double ohms = bridge_resistance(fault, opt);
      for (std::size_t i = 1; i < fault.nets.size(); ++i) {
        add_bridge(out, std::to_string(i), fault.nets[0], fault.nets[i],
                   ohms, opt, non_catastrophic);
      }
      return out;
    }

    case FaultKind::kJunctionPinhole: {
      if (fault.nets.size() != 1)
        throw util::InvalidInputError(
            "apply_fault: junction pinhole needs exactly 1 net");
      require_node(out, fault.nets[0]);
      const std::string rail = fault.to_vdd ? opt.vdd_net : "0";
      add_bridge(out, "jp", fault.nets[0], rail, opt.pinhole_ohms, opt,
                 false);
      return out;
    }

    case FaultKind::kGateOxidePinhole: {
      const auto& mos = find_mosfet(out, fault.device);
      const std::string gate = out.node_name(mos.gate);
      const std::string source = out.node_name(mos.source);
      const std::string drain = out.node_name(mos.drain);
      if (variant == 0) {
        add_bridge(out, "gos_s", gate, source, opt.pinhole_ohms, opt, false);
      } else if (variant == 1) {
        add_bridge(out, "gos_d", gate, drain, opt.pinhole_ohms, opt, false);
      } else {
        // Gate-to-channel: the channel midpoint is approximated by a
        // series tap halfway between source and drain.
        const spice::NodeId mid = out.make_internal_node("gos_ch");
        const std::string mid_name = out.node_name(mid);
        out.add_resistor("FLTR_gos_ch", gate, mid_name, opt.pinhole_ohms);
        out.add_resistor("FLTR_ch_s", mid_name, source,
                         opt.pinhole_ohms / 2.0);
        out.add_resistor("FLTR_ch_d", mid_name, drain,
                         opt.pinhole_ohms / 2.0);
      }
      return out;
    }

    case FaultKind::kOpen: {
      if (fault.nets.size() != 1)
        throw util::InvalidInputError("apply_fault: open needs exactly 1 net");
      const auto node = out.find_node(fault.nets[0]);
      if (!node)
        throw util::InvalidInputError("apply_fault: unknown net " +
                                      fault.nets[0]);
      const spice::NodeId split = out.make_internal_node("open");
      for (const auto& tap : fault.isolated_taps) {
        if (tap.device == "pin") continue;  // pins keep the original node
        auto* device = out.find_device(tap.device);
        if (device == nullptr)
          throw util::InvalidInputError("apply_fault: open references "
                                        "unknown device " + tap.device);
        const auto nodes = spice::Netlist::terminal_nodes(*device);
        if (tap.terminal < 0 ||
            static_cast<std::size_t>(tap.terminal) >= nodes.size() ||
            nodes[static_cast<std::size_t>(tap.terminal)] != *node)
          throw util::InvalidInputError(
              "apply_fault: open tap does not match netlist terminal");
        spice::Netlist::set_terminal_node(*device, tap.terminal, split);
      }
      return out;
    }

    case FaultKind::kNewDevice: {
      if (fault.nets.size() != 2)
        throw util::InvalidInputError(
            "apply_fault: new device needs exactly 2 nets");
      const auto type =
          fault.to_vdd ? spice::MosType::kPmos : spice::MosType::kNmos;
      const std::string bulk = fault.to_vdd ? opt.vdd_net : "0";
      out.add_mosfet("FLTM_new", type, fault.nets[0], fault.gate_net,
                     fault.nets[1], bulk, opt.new_device_w, opt.new_device_l,
                     opt.new_device_model);
      return out;
    }

    case FaultKind::kShortedDevice: {
      const auto& mos = find_mosfet(out, fault.device);
      add_bridge(out, "sd", out.node_name(mos.drain),
                 out.node_name(mos.source), opt.shorted_device_ohms, opt,
                 false);
      return out;
    }
  }
  throw util::InvalidInputError("apply_fault: unhandled fault kind");
}

}  // namespace dot::fault
