#include "defect/critical_area.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dot::defect {

double CriticalAreaCurve::area_at(double size) const {
  if (sizes.empty())
    throw util::InvalidInputError("CriticalAreaCurve: empty curve");
  if (size <= sizes.front()) return areas.front();
  if (size >= sizes.back()) return areas.back();
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    if (size <= sizes[i]) {
      const double frac = (size - sizes[i - 1]) / (sizes[i] - sizes[i - 1]);
      return areas[i - 1] + frac * (areas[i] - areas[i - 1]);
    }
  }
  return areas.back();
}

CriticalAreaCurve critical_area_curve(const DefectAnalyzer& analyzer,
                                      DefectType type,
                                      const std::vector<double>& sizes,
                                      double grid_pitch) {
  if (grid_pitch <= 0.0)
    throw util::InvalidInputError("critical_area_curve: bad grid pitch");
  CriticalAreaCurve curve;
  curve.type = type;
  curve.sizes = sizes;
  std::sort(curve.sizes.begin(), curve.sizes.end());

  const layout::Rect box = analyzer.cell().bounding_box();
  const auto nx =
      static_cast<std::size_t>(std::ceil(box.width() / grid_pitch));
  const auto ny =
      static_cast<std::size_t>(std::ceil(box.height() / grid_pitch));

  for (double size : curve.sizes) {
    std::size_t hits = 0;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        Defect defect;
        defect.type = type;
        defect.size = size;
        defect.center = {box.x_lo + (static_cast<double>(ix) + 0.5) *
                                        grid_pitch,
                         box.y_lo + (static_cast<double>(iy) + 0.5) *
                                        grid_pitch};
        if (analyzer.analyze(defect)) ++hits;
      }
    }
    curve.areas.push_back(static_cast<double>(hits) * grid_pitch *
                          grid_pitch);
  }
  return curve;
}

double fault_probability(const CriticalAreaCurve& curve,
                         const DefectStatistics& statistics,
                         double cell_area, int quadrature_points) {
  if (cell_area <= 0.0 || quadrature_points < 1)
    throw util::InvalidInputError("fault_probability: bad arguments");
  // Quantile quadrature: sizes at the midpoints of equal-probability
  // bins of the power-law distribution. For density ~ x^-k on
  // [a, b], the CDF is F(x) = (a^(1-k) - x^(1-k)) / (a^(1-k) - b^(1-k))
  // (k != 1), so the quantile is x(u) = (a^(1-k) - u*(a^(1-k)-b^(1-k)))
  // ^(1/(1-k)).
  const double a = statistics.size_min;
  const double b = statistics.size_max;
  const double k = statistics.size_exponent;
  auto quantile = [&](double u) {
    if (k == 1.0) return a * std::pow(b / a, u);
    const double one_minus = 1.0 - k;
    const double pa = std::pow(a, one_minus);
    const double pb = std::pow(b, one_minus);
    return std::pow(pa + u * (pb - pa), 1.0 / one_minus);
  };
  double total = 0.0;
  for (int i = 0; i < quadrature_points; ++i) {
    const double u = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(quadrature_points);
    total += curve.area_at(quantile(u)) / cell_area;
  }
  return total / static_cast<double>(quadrature_points);
}

}  // namespace dot::defect
