// Spot-defect statistics: relative occurrence rates per defect type and
// the defect size distribution.
//
// The defaults are calibrated so that, as in the paper's fab, "the
// majority of the spot defects in the fabrication process consist of
// extra material defects in the metallization steps" -- which is why
// more than 95% of the extracted faults are shorts.
#pragma once

#include <array>
#include <string>

#include "util/rng.hpp"

namespace dot::defect {

enum class DefectType {
  kExtraMetal1,
  kExtraMetal2,
  kExtraPoly,
  kExtraActive,
  kMissingMetal1,
  kMissingMetal2,
  kMissingPoly,
  kMissingActive,
  kExtraContact,   ///< Spurious contact cut (metal1 to poly/active).
  kExtraVia,       ///< Spurious via cut (metal1 to metal2).
  kMissingContact,
  kMissingVia,
  kGateOxidePinhole,
  kThickOxidePinhole,
  kJunctionPinhole,
};
inline constexpr int kDefectTypeCount = 15;

const std::string& defect_type_name(DefectType type);

/// Spatial clustering of spot defects. Real fab defects do not arrive
/// as a homogeneous Poisson process: a scratch, splash or particle
/// shower deposits several spots close together, giving fault counts a
/// negative-binomial (over-dispersed) distribution across dies.
struct ClusterParams {
  /// Probability that a sampled defect seeds a cluster of extra spots.
  double cluster_fraction = 0.0;
  /// Mean number of EXTRA spots per cluster (geometric distribution).
  double mean_extra = 4.0;
  /// Gaussian spread of cluster members around the seed [um].
  double radius = 10.0;

  bool enabled() const { return cluster_fraction > 0.0; }
};

struct DefectStatistics {
  /// Relative density per defect type (weights, need not sum to 1).
  std::array<double, kDefectTypeCount> weights;

  /// Spot size distribution ~ 1/x^exponent on [size_min, size_max] (um).
  double size_min = 0.5;
  double size_max = 20.0;
  double size_exponent = 3.0;

  /// Spatial clustering (disabled by default: pure Poisson sprinkling).
  ClusterParams clustering;

  DefectStatistics();

  double weight(DefectType type) const {
    return weights[static_cast<std::size_t>(type)];
  }
  double& weight(DefectType type) {
    return weights[static_cast<std::size_t>(type)];
  }

  /// Draws a defect type according to the weights.
  DefectType sample_type(util::Rng& rng) const;
  /// Draws a spot diameter.
  double sample_size(util::Rng& rng) const;
};

}  // namespace dot::defect
