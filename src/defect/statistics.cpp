#include "defect/statistics.hpp"

#include <array>
#include <vector>

namespace dot::defect {

const std::string& defect_type_name(DefectType type) {
  static const std::array<std::string, kDefectTypeCount> names = {
      "extra metal1",    "extra metal2",     "extra poly",
      "extra active",    "missing metal1",   "missing metal2",
      "missing poly",    "missing active",   "extra contact",
      "extra via",       "missing contact",  "missing via",
      "gate oxide pinhole", "thick oxide pinhole", "junction pinhole"};
  return names[static_cast<std::size_t>(type)];
}

DefectStatistics::DefectStatistics() {
  // Metallization extra-material defects dominate (paper section 3.2:
  // "the majority of the spot defects in the fabrication process consist
  // of extra material defects in the metallization steps"); missing
  // material, spurious cuts and pinholes are orders of magnitude rarer,
  // which reproduces Table 1's shape (shorts > 95% of faults, opens a
  // tiny fault fraction yet a rich class population).
  weights = {};
  weight(DefectType::kExtraMetal1) = 40.0;
  weight(DefectType::kExtraMetal2) = 30.0;
  weight(DefectType::kExtraPoly) = 13.0;
  weight(DefectType::kExtraActive) = 7.0;
  weight(DefectType::kMissingMetal1) = 0.2;
  weight(DefectType::kMissingMetal2) = 0.16;
  weight(DefectType::kMissingPoly) = 0.1;
  weight(DefectType::kMissingActive) = 0.06;
  weight(DefectType::kExtraContact) = 0.7;
  weight(DefectType::kExtraVia) = 0.5;
  weight(DefectType::kMissingContact) = 0.08;
  weight(DefectType::kMissingVia) = 0.06;
  weight(DefectType::kGateOxidePinhole) = 1.2;
  weight(DefectType::kThickOxidePinhole) = 0.8;
  weight(DefectType::kJunctionPinhole) = 1.0;
}

DefectType DefectStatistics::sample_type(util::Rng& rng) const {
  const std::vector<double> w(weights.begin(), weights.end());
  return static_cast<DefectType>(rng.weighted(w));
}

double DefectStatistics::sample_size(util::Rng& rng) const {
  return rng.power_law(size_min, size_max, size_exponent);
}

}  // namespace dot::defect
