#include "defect/simulate.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace dot::defect {

namespace {

/// Defects are sprinkled in fixed blocks of this many spots. Each block
/// draws from its own RNG stream (split from the master seed by block
/// index), so the campaign decomposes into independent work items whose
/// union is a pure function of (seed, defect_count) -- bit-identical at
/// any thread count. Cluster tails are confined to their block, exactly
/// as the former serial loop confined them to the campaign tail.
constexpr std::size_t kSprinkleBlock = 8192;

/// Partial campaign over one block; merged in block order afterwards.
struct BlockResult {
  std::size_t faults_extracted = 0;
  std::array<std::size_t, fault::kFaultKindCount> faults_by_kind{};
  std::array<std::size_t, kDefectTypeCount> defects_by_type{};
  std::array<std::size_t, kDefectTypeCount> faulting_by_type{};
  /// Collapsed classes in first-occurrence order plus their keys (kept
  /// so the merge does not recompute fault::CircuitFault::key()).
  std::vector<fault::FaultClass> classes;
  std::vector<std::string> keys;
};

BlockResult sprinkle_block(const DefectAnalyzer& analyzer,
                           const CampaignOptions& options,
                           std::size_t block_index, std::size_t budget) {
  util::Rng rng = util::Rng(options.seed).split(block_index);
  const layout::Rect area = analyzer.cell().bounding_box();
  const auto& clustering = options.statistics.clustering;

  BlockResult result;
  std::unordered_map<std::string, std::size_t> class_index;
  // Cluster members waiting to be sprinkled; they count against the
  // block's defect budget like any other spot, and inherit the seed's
  // defect type (a scratch is all extra-metal, a splash all one
  // material).
  struct PendingMember {
    layout::Point at;
    DefectType type;
  };
  std::vector<PendingMember> pending_cluster;
  for (std::size_t n = 0; n < budget; ++n) {
    Defect defect = sample_defect(options.statistics, area, rng);
    if (!pending_cluster.empty()) {
      defect.center = pending_cluster.back().at;
      defect.type = pending_cluster.back().type;
      pending_cluster.pop_back();
    } else if (clustering.enabled() &&
               rng.chance(clustering.cluster_fraction)) {
      // Geometric number of additional spots around this seed.
      while (rng.chance(clustering.mean_extra /
                        (clustering.mean_extra + 1.0))) {
        layout::Point member{
            defect.center.x + rng.normal(0.0, clustering.radius),
            defect.center.y + rng.normal(0.0, clustering.radius)};
        member.x = std::clamp(member.x, area.x_lo, area.x_hi);
        member.y = std::clamp(member.y, area.y_lo, area.y_hi);
        pending_cluster.push_back({member, defect.type});
      }
    }
    ++result.defects_by_type[static_cast<std::size_t>(defect.type)];
    const auto fault = analyzer.analyze(defect);
    if (!fault) continue;
    ++result.faults_extracted;
    ++result.faulting_by_type[static_cast<std::size_t>(defect.type)];
    ++result.faults_by_kind[static_cast<std::size_t>(fault->kind)];
    std::string key = fault->key();
    auto [it, inserted] = class_index.emplace(key, result.classes.size());
    if (inserted) {
      result.classes.push_back(fault::FaultClass{*fault, 1});
      result.keys.push_back(std::move(key));
    } else {
      ++result.classes[it->second].count;
    }
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(const layout::CellLayout& cell,
                            const CampaignOptions& options) {
  AnalyzerOptions analyzer_options;
  analyzer_options.vdd_net = options.vdd_net;
  const DefectAnalyzer analyzer(cell, analyzer_options);
  return run_campaign(analyzer, options);
}

CampaignResult run_campaign(const DefectAnalyzer& analyzer,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.defects_sprinkled = options.defect_count;

  const std::size_t blocks =
      (options.defect_count + kSprinkleBlock - 1) / kSprinkleBlock;
  // One RNG stream per block: the analyzer is read-only, so blocks run
  // concurrently; the merge below walks them in index order, which
  // keeps class first-occurrence order (and therefore tie-breaks of
  // the final sort) independent of scheduling.
  const auto partials =
      util::parallel_map(blocks, [&](std::size_t block) {
        const std::size_t lo = block * kSprinkleBlock;
        const std::size_t budget =
            std::min(options.defect_count - lo, kSprinkleBlock);
        return sprinkle_block(analyzer, options, block, budget);
      });

  std::unordered_map<std::string, std::size_t> class_index;
  for (const auto& partial : partials) {
    result.faults_extracted += partial.faults_extracted;
    for (std::size_t k = 0; k < partial.faults_by_kind.size(); ++k)
      result.faults_by_kind[k] += partial.faults_by_kind[k];
    for (std::size_t t = 0; t < partial.defects_by_type.size(); ++t) {
      result.defects_by_type[t] += partial.defects_by_type[t];
      result.faulting_by_type[t] += partial.faulting_by_type[t];
    }
    for (std::size_t c = 0; c < partial.classes.size(); ++c) {
      auto [it, inserted] =
          class_index.emplace(partial.keys[c], result.classes.size());
      if (inserted)
        result.classes.push_back(partial.classes[c]);
      else
        result.classes[it->second].count += partial.classes[c].count;
    }
  }

  for (const auto& cls : result.classes)
    ++result.classes_by_kind[static_cast<std::size_t>(
        cls.representative.kind)];

  std::stable_sort(result.classes.begin(), result.classes.end(),
                   [](const fault::FaultClass& a, const fault::FaultClass& b) {
                     return a.count > b.count;
                   });
  return result;
}

}  // namespace dot::defect
