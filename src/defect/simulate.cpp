#include "defect/simulate.hpp"

#include <algorithm>

namespace dot::defect {

CampaignResult run_campaign(const layout::CellLayout& cell,
                            const CampaignOptions& options) {
  AnalyzerOptions analyzer_options;
  analyzer_options.vdd_net = options.vdd_net;
  const DefectAnalyzer analyzer(cell, analyzer_options);
  return run_campaign(analyzer, options);
}

CampaignResult run_campaign(const DefectAnalyzer& analyzer,
                            const CampaignOptions& options) {
  util::Rng rng(options.seed);
  const layout::Rect area = analyzer.cell().bounding_box();
  const auto& clustering = options.statistics.clustering;

  CampaignResult result;
  result.defects_sprinkled = options.defect_count;

  std::unordered_map<std::string, std::size_t> class_index;
  // Cluster members waiting to be sprinkled; they count against the
  // defect budget like any other spot, and inherit the seed's defect
  // type (a scratch is all extra-metal, a splash all one material).
  struct PendingMember {
    layout::Point at;
    DefectType type;
  };
  std::vector<PendingMember> pending_cluster;
  for (std::size_t n = 0; n < options.defect_count; ++n) {
    Defect defect = sample_defect(options.statistics, area, rng);
    if (!pending_cluster.empty()) {
      defect.center = pending_cluster.back().at;
      defect.type = pending_cluster.back().type;
      pending_cluster.pop_back();
    } else if (clustering.enabled() &&
               rng.chance(clustering.cluster_fraction)) {
      // Geometric number of additional spots around this seed.
      while (rng.chance(clustering.mean_extra /
                        (clustering.mean_extra + 1.0))) {
        layout::Point member{
            defect.center.x + rng.normal(0.0, clustering.radius),
            defect.center.y + rng.normal(0.0, clustering.radius)};
        member.x = std::clamp(member.x, area.x_lo, area.x_hi);
        member.y = std::clamp(member.y, area.y_lo, area.y_hi);
        pending_cluster.push_back({member, defect.type});
      }
    }
    ++result.defects_by_type[static_cast<std::size_t>(defect.type)];
    const auto fault = analyzer.analyze(defect);
    if (!fault) continue;
    ++result.faults_extracted;
    ++result.faulting_by_type[static_cast<std::size_t>(defect.type)];
    ++result.faults_by_kind[static_cast<std::size_t>(fault->kind)];
    const std::string key = fault->key();
    auto [it, inserted] = class_index.emplace(key, result.classes.size());
    if (inserted)
      result.classes.push_back(fault::FaultClass{*fault, 1});
    else
      ++result.classes[it->second].count;
  }

  for (const auto& cls : result.classes)
    ++result.classes_by_kind[static_cast<std::size_t>(
        cls.representative.kind)];

  std::stable_sort(result.classes.begin(), result.classes.end(),
                   [](const fault::FaultClass& a, const fault::FaultClass& b) {
                     return a.count > b.count;
                   });
  return result;
}

}  // namespace dot::defect
