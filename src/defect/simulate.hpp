// Monte-Carlo defect campaign: sprinkle N defects on a cell layout,
// extract the circuit-level faults they cause, and collapse them into
// fault classes -- the "defect simulator" + "fault collapsing" stages of
// the paper's figure 1.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "defect/analyze.hpp"
#include "defect/statistics.hpp"
#include "fault/fault.hpp"
#include "layout/cell.hpp"

namespace dot::defect {

struct CampaignOptions {
  DefectStatistics statistics;
  std::size_t defect_count = 25000;
  std::uint64_t seed = 1;
  std::string vdd_net = "vdd";
};

struct CampaignResult {
  std::size_t defects_sprinkled = 0;
  std::size_t faults_extracted = 0;
  /// Collapsed fault classes, descending count.
  std::vector<fault::FaultClass> classes;
  /// Fault counts per fault kind (Table 1, "% faults" column).
  std::array<std::size_t, fault::kFaultKindCount> faults_by_kind{};
  /// Class counts per fault kind (Table 1, "% fault classes" column).
  std::array<std::size_t, fault::kFaultKindCount> classes_by_kind{};
  /// How many defects of each type were sprinkled.
  std::array<std::size_t, kDefectTypeCount> defects_by_type{};
  /// How many defects of each type caused a fault.
  std::array<std::size_t, kDefectTypeCount> faulting_by_type{};

  double fault_yield() const {
    return defects_sprinkled == 0
               ? 0.0
               : static_cast<double>(faults_extracted) /
                     static_cast<double>(defects_sprinkled);
  }
};

/// Runs the campaign. Fault collapsing happens on the fly, so memory
/// stays proportional to the number of classes, not the defect count.
CampaignResult run_campaign(const layout::CellLayout& cell,
                            const CampaignOptions& options);

/// Same, reusing an existing analyzer (cheaper when sweeping options).
CampaignResult run_campaign(const DefectAnalyzer& analyzer,
                            const CampaignOptions& options);

}  // namespace dot::defect
