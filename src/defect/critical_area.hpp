// Critical-area analysis: the deterministic counterpart of Monte-Carlo
// defect sprinkling. For a given defect type and spot size s, the
// critical area A(s) is the set of spot centres that cause a fault;
// integrating A(s)/A_cell against the spot-size distribution gives the
// per-defect fault probability -- a closed-form cross-check of the
// sprinkling campaign (classic inductive fault analysis, paper ref [1]).
#pragma once

#include <vector>

#include "defect/analyze.hpp"
#include "defect/statistics.hpp"

namespace dot::defect {

struct CriticalAreaCurve {
  DefectType type = DefectType::kExtraMetal1;
  std::vector<double> sizes;  ///< Spot diameters [um], ascending.
  std::vector<double> areas;  ///< Critical area [um^2] per size.

  /// Linear interpolation (clamped at the ends).
  double area_at(double size) const;
};

/// Estimates A(s) for one defect type by scanning spot centres on a
/// regular grid over the cell bounding box (grid quadrature of the
/// indicator function "this defect causes a fault").
CriticalAreaCurve critical_area_curve(const DefectAnalyzer& analyzer,
                                      DefectType type,
                                      const std::vector<double>& sizes,
                                      double grid_pitch = 0.5);

/// Per-defect fault probability for this type: the expectation of
/// A(s)/A_cell over the spot-size distribution, evaluated by quantile
/// quadrature of the power law.
double fault_probability(const CriticalAreaCurve& curve,
                         const DefectStatistics& statistics,
                         double cell_area, int quadrature_points = 64);

}  // namespace dot::defect
