// Defect-to-fault analysis: decides whether one sprinkled spot defect
// causes a circuit-level fault, and extracts that fault. This is the
// core of the VLASIC-equivalent catastrophic defect simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "defect/statistics.hpp"
#include "fault/fault.hpp"
#include "layout/cell.hpp"
#include "util/rng.hpp"

namespace dot::defect {

/// One sprinkled spot defect.
struct Defect {
  DefectType type = DefectType::kExtraMetal1;
  layout::Point center;
  double size = 1.0;  ///< Spot diameter (modelled as a square).
};

/// Samples a defect: type by statistics weight, position uniform over
/// the cell bounding box, size by the power-law distribution.
Defect sample_defect(const DefectStatistics& stats, const layout::Rect& area,
                     util::Rng& rng);

struct AnalyzerOptions {
  std::string vdd_net = "vdd";
  /// Grid bin size for the spatial index (um).
  double bin_size = 5.0;
};

/// Precomputes spatial and per-net indexes over one cell layout, then
/// answers defect queries. The analyzer borrows the cell; keep the cell
/// alive while using it.
class DefectAnalyzer {
 public:
  DefectAnalyzer(const layout::CellLayout& cell, AnalyzerOptions options);

  /// Returns the circuit-level fault the defect causes, or nullopt when
  /// the defect is harmless (lands on empty area, same-net material,
  /// redundant wiring, ...).
  std::optional<fault::CircuitFault> analyze(const Defect& defect) const;

  const layout::CellLayout& cell() const { return cell_; }

 private:
  struct NetGraph;  // per-net shape adjacency for open analysis

  std::vector<std::size_t> shapes_hit(layout::Layer layer,
                                      const layout::Rect& probe) const;

  std::optional<fault::CircuitFault> analyze_extra_material(
      const Defect& defect, layout::Layer layer) const;
  std::optional<fault::CircuitFault> analyze_missing_material(
      const Defect& defect, layout::Layer layer) const;
  std::optional<fault::CircuitFault> analyze_missing_cut(
      const Defect& defect, layout::Layer layer) const;
  std::optional<fault::CircuitFault> analyze_extra_cut(
      const Defect& defect, layout::Layer cut_layer) const;
  std::optional<fault::CircuitFault> analyze_gate_oxide(
      const Defect& defect) const;
  std::optional<fault::CircuitFault> analyze_thick_oxide(
      const Defect& defect) const;
  std::optional<fault::CircuitFault> analyze_junction(
      const Defect& defect) const;

  /// Open extraction on one net after deleting/shrinking material.
  std::optional<fault::CircuitFault> open_fault_for(
      const std::string& net, const std::vector<std::size_t>& removed,
      const layout::Rect& footprint) const;

  const layout::CellLayout& cell_;
  AnalyzerOptions options_;

  // Spatial grid: per layer, bin -> shape indices.
  layout::Rect bbox_;
  int bins_x_ = 1;
  int bins_y_ = 1;
  std::vector<std::vector<std::vector<std::size_t>>> grid_;  // [layer][bin]

  // Per-net shape lists and tap lists for open analysis.
  std::vector<std::string> net_names_;
  std::vector<std::vector<std::size_t>> net_shapes_;
  std::vector<std::vector<std::size_t>> net_taps_;
  int net_index(const std::string& net) const;
};

}  // namespace dot::defect
