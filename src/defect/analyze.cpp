#include "defect/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "layout/extract.hpp"
#include "util/error.hpp"

namespace dot::defect {

using fault::BridgeMaterial;
using fault::CircuitFault;
using fault::FaultKind;
using layout::CellLayout;
using layout::Layer;
using layout::Point;
using layout::Rect;
using layout::Shape;

Defect sample_defect(const DefectStatistics& stats, const Rect& area,
                     util::Rng& rng) {
  Defect d;
  d.type = stats.sample_type(rng);
  d.center = {rng.uniform(area.x_lo, area.x_hi),
              rng.uniform(area.y_lo, area.y_hi)};
  d.size = stats.sample_size(rng);
  return d;
}

namespace {

BridgeMaterial material_of(Layer layer) {
  switch (layer) {
    case Layer::kMetal1:
    case Layer::kMetal2:
      return BridgeMaterial::kMetal;
    case Layer::kPoly:
      return BridgeMaterial::kPoly;
    case Layer::kActive:
      return BridgeMaterial::kDiffusion;
    default:
      return BridgeMaterial::kNone;
  }
}

/// Axis-aligned subtraction: r minus cut, as up to four rectangles. The
/// top/bottom strips are widened by a hair so that an L-shaped remnant
/// stays connected under the open-interval intersection test.
std::vector<Rect> subtract(const Rect& r, const Rect& cut) {
  if (!r.intersects(cut)) return {r};
  std::vector<Rect> out;
  constexpr double kEps = 0.01;
  if (cut.x_lo > r.x_lo)
    out.push_back(Rect{r.x_lo, r.y_lo, cut.x_lo, r.y_hi});
  if (cut.x_hi < r.x_hi)
    out.push_back(Rect{cut.x_hi, r.y_lo, r.x_hi, r.y_hi});
  const double strip_lo = std::max(r.x_lo, cut.x_lo - kEps);
  const double strip_hi = std::min(r.x_hi, cut.x_hi + kEps);
  if (cut.y_lo > r.y_lo && strip_hi > strip_lo)
    out.push_back(Rect{strip_lo, r.y_lo, strip_hi, cut.y_lo});
  if (cut.y_hi < r.y_hi && strip_hi > strip_lo)
    out.push_back(Rect{strip_lo, cut.y_hi, strip_hi, r.y_hi});
  std::erase_if(out, [](const Rect& p) { return p.empty(); });
  return out;
}

bool cut_connects(Layer cut, Layer conductor) {
  if (cut == Layer::kContact)
    return conductor == Layer::kMetal1 || conductor == Layer::kPoly ||
           conductor == Layer::kActive;
  if (cut == Layer::kVia1)
    return conductor == Layer::kMetal1 || conductor == Layer::kMetal2;
  return false;
}

}  // namespace

DefectAnalyzer::DefectAnalyzer(const CellLayout& cell,
                               AnalyzerOptions options)
    : cell_(cell), options_(std::move(options)) {
  bbox_ = cell.bounding_box().expanded(1.0);
  bins_x_ = std::max(1, static_cast<int>(bbox_.width() / options_.bin_size));
  bins_y_ = std::max(1, static_cast<int>(bbox_.height() / options_.bin_size));
  grid_.assign(layout::kLayerCount, {});
  for (auto& layer_bins : grid_)
    layer_bins.assign(static_cast<std::size_t>(bins_x_ * bins_y_), {});

  const auto& shapes = cell.shapes();
  auto bin_range = [&](const Rect& r, int& x0, int& x1, int& y0, int& y1) {
    auto clampi = [](int v, int lo, int hi) {
      return std::max(lo, std::min(v, hi));
    };
    x0 = clampi(static_cast<int>((r.x_lo - bbox_.x_lo) / bbox_.width() *
                                 bins_x_),
                0, bins_x_ - 1);
    x1 = clampi(static_cast<int>((r.x_hi - bbox_.x_lo) / bbox_.width() *
                                 bins_x_),
                0, bins_x_ - 1);
    y0 = clampi(static_cast<int>((r.y_lo - bbox_.y_lo) / bbox_.height() *
                                 bins_y_),
                0, bins_y_ - 1);
    y1 = clampi(static_cast<int>((r.y_hi - bbox_.y_lo) / bbox_.height() *
                                 bins_y_),
                0, bins_y_ - 1);
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    int x0, x1, y0, y1;
    bin_range(shapes[i].rect, x0, x1, y0, y1);
    for (int by = y0; by <= y1; ++by)
      for (int bx = x0; bx <= x1; ++bx)
        grid_[static_cast<std::size_t>(shapes[i].layer)]
             [static_cast<std::size_t>(by * bins_x_ + bx)]
                 .push_back(i);
  }

  // Per-net shape and tap indexes.
  std::map<std::string, int> net_of;
  auto net_slot = [&](const std::string& net) {
    auto [it, inserted] =
        net_of.emplace(net, static_cast<int>(net_names_.size()));
    if (inserted) {
      net_names_.push_back(net);
      net_shapes_.emplace_back();
      net_taps_.emplace_back();
    }
    return it->second;
  };
  for (std::size_t i = 0; i < shapes.size(); ++i)
    if (!shapes[i].net.empty())
      net_shapes_[static_cast<std::size_t>(net_slot(shapes[i].net))]
          .push_back(i);
  for (std::size_t t = 0; t < cell.taps().size(); ++t)
    net_taps_[static_cast<std::size_t>(net_slot(cell.taps()[t].net))]
        .push_back(t);
}

int DefectAnalyzer::net_index(const std::string& net) const {
  for (std::size_t i = 0; i < net_names_.size(); ++i)
    if (net_names_[i] == net) return static_cast<int>(i);
  return -1;
}

std::vector<std::size_t> DefectAnalyzer::shapes_hit(Layer layer,
                                                    const Rect& probe) const {
  const auto& shapes = cell_.shapes();
  std::vector<std::size_t> out;
  auto clampi = [](int v, int lo, int hi) {
    return std::max(lo, std::min(v, hi));
  };
  const int x0 = clampi(
      static_cast<int>((probe.x_lo - bbox_.x_lo) / bbox_.width() * bins_x_),
      0, bins_x_ - 1);
  const int x1 = clampi(
      static_cast<int>((probe.x_hi - bbox_.x_lo) / bbox_.width() * bins_x_),
      0, bins_x_ - 1);
  const int y0 = clampi(
      static_cast<int>((probe.y_lo - bbox_.y_lo) / bbox_.height() * bins_y_),
      0, bins_y_ - 1);
  const int y1 = clampi(
      static_cast<int>((probe.y_hi - bbox_.y_lo) / bbox_.height() * bins_y_),
      0, bins_y_ - 1);
  const auto& layer_bins = grid_[static_cast<std::size_t>(layer)];
  for (int by = y0; by <= y1; ++by) {
    for (int bx = x0; bx <= x1; ++bx) {
      for (std::size_t i :
           layer_bins[static_cast<std::size_t>(by * bins_x_ + bx)]) {
        if (shapes[i].rect.intersects(probe) &&
            std::find(out.begin(), out.end(), i) == out.end())
          out.push_back(i);
      }
    }
  }
  return out;
}

std::optional<CircuitFault> DefectAnalyzer::analyze(
    const Defect& defect) const {
  switch (defect.type) {
    case DefectType::kExtraMetal1:
      return analyze_extra_material(defect, Layer::kMetal1);
    case DefectType::kExtraMetal2:
      return analyze_extra_material(defect, Layer::kMetal2);
    case DefectType::kExtraPoly:
      return analyze_extra_material(defect, Layer::kPoly);
    case DefectType::kExtraActive:
      return analyze_extra_material(defect, Layer::kActive);
    case DefectType::kMissingMetal1:
      return analyze_missing_material(defect, Layer::kMetal1);
    case DefectType::kMissingMetal2:
      return analyze_missing_material(defect, Layer::kMetal2);
    case DefectType::kMissingPoly:
      return analyze_missing_material(defect, Layer::kPoly);
    case DefectType::kMissingActive:
      return analyze_missing_material(defect, Layer::kActive);
    case DefectType::kExtraContact:
      return analyze_extra_cut(defect, Layer::kContact);
    case DefectType::kExtraVia:
      return analyze_extra_cut(defect, Layer::kVia1);
    case DefectType::kMissingContact:
      return analyze_missing_cut(defect, Layer::kContact);
    case DefectType::kMissingVia:
      return analyze_missing_cut(defect, Layer::kVia1);
    case DefectType::kGateOxidePinhole:
      return analyze_gate_oxide(defect);
    case DefectType::kThickOxidePinhole:
      return analyze_thick_oxide(defect);
    case DefectType::kJunctionPinhole:
      return analyze_junction(defect);
  }
  return std::nullopt;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_extra_material(
    const Defect& defect, Layer layer) const {
  const Rect foot = Rect::square(defect.center, defect.size);
  const auto hits = shapes_hit(layer, foot);
  std::vector<std::string> nets;
  for (std::size_t i : hits) {
    const auto& net = cell_.shapes()[i].net;
    if (std::find(nets.begin(), nets.end(), net) == nets.end())
      nets.push_back(net);
  }
  if (nets.size() < 2) return std::nullopt;
  std::sort(nets.begin(), nets.end());

  if (layer == Layer::kActive) {
    // Extra diffusion under existing poly makes a parasitic transistor
    // instead of a hard short (VLASIC "new device"); bridging the source
    // and drain of one transistor next to its own gate is a "shorted
    // device".
    const auto poly_hits = shapes_hit(Layer::kPoly, foot);
    if (!poly_hits.empty()) {
      for (const auto& region : cell_.mos_regions()) {
        if (!region.channel.intersects(foot)) continue;
        const bool bridges_own_sd =
            std::find(nets.begin(), nets.end(), region.source_net) !=
                nets.end() &&
            std::find(nets.begin(), nets.end(), region.drain_net) !=
                nets.end();
        if (bridges_own_sd) {
          CircuitFault f;
          f.kind = FaultKind::kShortedDevice;
          f.device = region.device;
          return f;
        }
      }
      CircuitFault f;
      f.kind = FaultKind::kNewDevice;
      f.nets = {nets[0], nets[1]};
      f.gate_net = cell_.shapes()[poly_hits.front()].net;
      f.to_vdd = cell_.inside_nwell(defect.center);
      return f;
    }
  }

  CircuitFault f;
  f.kind = FaultKind::kShort;
  f.nets = std::move(nets);
  f.material = material_of(layer);
  return f;
}

std::optional<CircuitFault> DefectAnalyzer::open_fault_for(
    const std::string& net, const std::vector<std::size_t>& removed,
    const Rect& footprint) const {
  const int ni = net_index(net);
  if (ni < 0) return std::nullopt;
  const auto& shapes = cell_.shapes();

  // Build remnant geometry for this net: unaffected shapes stay whole,
  // affected conducting shapes shrink to their remnants, removed cuts
  // vanish entirely.
  struct Piece {
    Rect rect;
    Layer layer;
  };
  std::vector<Piece> pieces;
  for (std::size_t i : net_shapes_[static_cast<std::size_t>(ni)]) {
    const Shape& s = shapes[i];
    const bool is_removed =
        std::find(removed.begin(), removed.end(), i) != removed.end();
    if (!is_removed) {
      pieces.push_back({s.rect, s.layer});
      continue;
    }
    if (layout::is_cut(s.layer)) continue;  // cut destroyed entirely
    for (const Rect& remnant : subtract(s.rect, footprint))
      pieces.push_back({remnant, s.layer});
  }

  // Union-find over pieces with the electrical connection rules.
  layout::UnionFind uf(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      if (!pieces[i].rect.intersects(pieces[j].rect)) continue;
      const bool same_layer = pieces[i].layer == pieces[j].layer &&
                              layout::is_conducting(pieces[i].layer);
      const bool via_pair =
          (layout::is_cut(pieces[i].layer) &&
           cut_connects(pieces[i].layer, pieces[j].layer)) ||
          (layout::is_cut(pieces[j].layer) &&
           cut_connects(pieces[j].layer, pieces[i].layer));
      if (same_layer || via_pair) uf.unite(i, j);
    }
  }

  // Group taps by the component of a piece containing them.
  const auto& taps = cell_.taps();
  std::map<long, std::vector<std::size_t>> groups;
  for (std::size_t t : net_taps_[static_cast<std::size_t>(ni)]) {
    long key = -1 - static_cast<long>(t);
    for (std::size_t p = 0; p < pieces.size(); ++p) {
      if (pieces[p].layer != taps[t].layer) continue;
      if (pieces[p].rect.contains(taps[t].at)) {
        key = static_cast<long>(uf.find(p));
        break;
      }
    }
    groups[key].push_back(t);
  }
  if (groups.size() < 2) return std::nullopt;

  // The side keeping the original node is the group holding the first
  // pin tap; without pins, the largest group.
  long keep_key = groups.begin()->first;
  bool keep_found = false;
  for (const auto& [key, tap_list] : groups) {
    for (std::size_t t : tap_list) {
      if (taps[t].device == "pin") {
        keep_key = key;
        keep_found = true;
        break;
      }
    }
    if (keep_found) break;
  }
  if (!keep_found) {
    std::size_t best = 0;
    for (const auto& [key, tap_list] : groups) {
      if (tap_list.size() > best) {
        best = tap_list.size();
        keep_key = key;
      }
    }
  }

  CircuitFault f;
  f.kind = FaultKind::kOpen;
  f.nets = {net};
  for (const auto& [key, tap_list] : groups) {
    if (key == keep_key) continue;
    for (std::size_t t : tap_list)
      f.isolated_taps.push_back({taps[t].device, taps[t].terminal});
  }
  if (f.isolated_taps.empty()) return std::nullopt;
  // Canonical order for collapsing.
  std::sort(f.isolated_taps.begin(), f.isolated_taps.end(),
            [](const fault::TapRef& a, const fault::TapRef& b) {
              return std::tie(a.device, a.terminal) <
                     std::tie(b.device, b.terminal);
            });
  return f;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_missing_material(
    const Defect& defect, Layer layer) const {
  const Rect foot = Rect::square(defect.center, defect.size);
  const auto hits = shapes_hit(layer, foot);
  if (hits.empty()) return std::nullopt;

  // Collect affected nets; try each for a split, report the first.
  std::vector<std::string> nets;
  for (std::size_t i : hits) {
    const auto& net = cell_.shapes()[i].net;
    if (std::find(nets.begin(), nets.end(), net) == nets.end())
      nets.push_back(net);
  }
  for (const auto& net : nets) {
    std::vector<std::size_t> removed;
    for (std::size_t i : hits)
      if (cell_.shapes()[i].net == net) removed.push_back(i);
    if (auto f = open_fault_for(net, removed, foot)) return f;
  }
  return std::nullopt;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_missing_cut(
    const Defect& defect, Layer layer) const {
  const Rect foot = Rect::square(defect.center, defect.size);
  const auto hits = shapes_hit(layer, foot);
  std::vector<std::size_t> removed;
  std::vector<std::string> nets;
  for (std::size_t i : hits) {
    // A cut is destroyed when the defect blankets its centre.
    if (!foot.contains(cell_.shapes()[i].rect.center())) continue;
    removed.push_back(i);
    const auto& net = cell_.shapes()[i].net;
    if (std::find(nets.begin(), nets.end(), net) == nets.end())
      nets.push_back(net);
  }
  for (const auto& net : nets) {
    std::vector<std::size_t> net_removed;
    for (std::size_t i : removed)
      if (cell_.shapes()[i].net == net) net_removed.push_back(i);
    if (auto f = open_fault_for(net, net_removed, foot)) return f;
  }
  return std::nullopt;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_extra_cut(
    const Defect& defect, Layer cut_layer) const {
  const Rect foot = Rect::square(defect.center, defect.size);
  const Layer upper = Layer::kMetal1;
  const auto upper_hits = shapes_hit(upper, foot);
  if (upper_hits.empty()) return std::nullopt;

  std::vector<Layer> lowers;
  if (cut_layer == Layer::kContact)
    lowers = {Layer::kPoly, Layer::kActive};
  else
    lowers = {Layer::kMetal2};

  std::vector<std::string> nets;
  auto add_net = [&](const std::string& net) {
    if (std::find(nets.begin(), nets.end(), net) == nets.end())
      nets.push_back(net);
  };
  for (std::size_t ui : upper_hits) {
    const Shape& u = cell_.shapes()[ui];
    for (Layer lower : lowers) {
      for (std::size_t li : shapes_hit(lower, foot)) {
        const Shape& l = cell_.shapes()[li];
        if (l.net == u.net) continue;
        // The spurious cut must land where the two layers overlap.
        const Rect overlap =
            u.rect.intersection(l.rect).intersection(foot);
        if (overlap.empty()) continue;
        add_net(u.net);
        add_net(l.net);
      }
    }
  }
  if (nets.size() < 2) return std::nullopt;
  std::sort(nets.begin(), nets.end());
  CircuitFault f;
  f.kind = FaultKind::kExtraContact;
  f.nets = std::move(nets);
  f.material = BridgeMaterial::kContact;
  return f;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_gate_oxide(
    const Defect& defect) const {
  const auto* region = cell_.mos_region_at(defect.center);
  if (region == nullptr) return std::nullopt;
  CircuitFault f;
  f.kind = FaultKind::kGateOxidePinhole;
  f.device = region->device;
  f.material = BridgeMaterial::kOxide;
  return f;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_thick_oxide(
    const Defect& defect) const {
  // A pinhole is a point-like vertical leak: metal1 over poly/active, or
  // metal2 over metal1, at the defect location.
  const Rect probe = Rect::square(defect.center, 0.05);
  struct Pair {
    Layer upper, lower;
  };
  static constexpr Pair kPairs[] = {
      {Layer::kMetal1, Layer::kPoly},
      {Layer::kMetal1, Layer::kActive},
      {Layer::kMetal2, Layer::kMetal1},
  };
  for (const auto& pair : kPairs) {
    const auto uppers = shapes_hit(pair.upper, probe);
    if (uppers.empty()) continue;
    const auto lowers = shapes_hit(pair.lower, probe);
    for (std::size_t ui : uppers) {
      for (std::size_t li : lowers) {
        const Shape& u = cell_.shapes()[ui];
        const Shape& l = cell_.shapes()[li];
        if (u.net == l.net) continue;
        CircuitFault f;
        f.kind = FaultKind::kThickOxidePinhole;
        f.nets = {std::min(u.net, l.net), std::max(u.net, l.net)};
        f.material = BridgeMaterial::kOxide;
        return f;
      }
    }
  }
  return std::nullopt;
}

std::optional<CircuitFault> DefectAnalyzer::analyze_junction(
    const Defect& defect) const {
  const Rect probe = Rect::square(defect.center, 0.05);
  const auto hits = shapes_hit(Layer::kActive, probe);
  if (hits.empty()) return std::nullopt;
  const std::string& net = cell_.shapes()[hits.front()].net;
  const bool to_vdd = cell_.inside_nwell(defect.center);
  // Leaking a rail into its own bulk is not a fault.
  if (!to_vdd && (net == "0" || net == "gnd")) return std::nullopt;
  if (to_vdd && net == options_.vdd_net) return std::nullopt;
  CircuitFault f;
  f.kind = FaultKind::kJunctionPinhole;
  f.nets = {net};
  f.to_vdd = to_vdd;
  f.material = BridgeMaterial::kOxide;
  return f;
}

}  // namespace dot::defect
