// Dense real matrix used by the MNA formulation. Macro cells in the
// methodology are deliberately small (that is the point of the macro
// decomposition), so a dense solver wins on constant factors below the
// dense/sparse crossover (~20-30 unknowns, measured by bench_solver);
// past it, spice::SolverContext switches to numeric/sparse.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dot::numeric {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void fill(double value);

  /// y = A * x
  std::vector<double> multiply(const std::vector<double>& x) const;

  Matrix transpose() const;

  /// max_ij |a_ij|
  double max_abs() const;

  std::string str(int decimals = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Vector helpers shared by the solvers.
double norm_inf(const std::vector<double>& v);
double norm_2(const std::vector<double>& v);
/// out = a - b (sizes must match).
std::vector<double> subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace dot::numeric
