#include "numeric/lu.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"

namespace dot::numeric {

LuFactorization::LuFactorization(Matrix a, double pivot_epsilon)
    : lu_(std::move(a)) {
  if (!lu_.square())
    throw std::invalid_argument("LuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  min_abs_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest-magnitude entry in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= pivot_epsilon) {
      singular_ = true;
      min_abs_pivot_ = 0.0;
      return;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    min_abs_pivot_ = std::min(min_abs_pivot_, pivot_mag);
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
  if (n == 0) min_abs_pivot_ = 0.0;
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  if (singular_)
    throw util::ConvergenceError("LU solve on singular matrix");
  const std::size_t n = lu_.rows();
  if (b.size() != n)
    throw std::invalid_argument("LuFactorization::solve: size mismatch");

  // Forward substitution on permuted b (L has implicit unit diagonal).
  std::vector<double> x(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

std::vector<double> solve_linear(const Matrix& a,
                                 const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace dot::numeric
