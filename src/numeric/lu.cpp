#include "numeric/lu.hpp"

namespace dot::numeric {

std::vector<double> solve_linear(const Matrix& a,
                                 const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace dot::numeric
