#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/error.hpp"

namespace dot::numeric {

// ---------------------------------------------------------------------------
// SparseAssemblerT
// ---------------------------------------------------------------------------

template <typename Scalar>
void SparseAssemblerT<Scalar>::begin(std::size_t n, std::uint32_t stream_tag) {
  if (n != n_) {
    frozen_ = false;
    n_ = n;
  }
  codes_.clear();
  vals_.clear();
  pattern_reused_ = false;
  // Trusted path: the caller vouches (via a matching nonzero tag) that
  // this round's add() stream repeats the frozen one, so values scatter
  // straight into their CSR slots.
  fast_ = stream_tag != 0 && frozen_ && stream_tag == frozen_tag_;
  fast_used_ = false;
  fast_index_ = 0;
  frozen_tag_ = stream_tag;
  if (fast_) values_.assign(pattern_.cols.size(), Scalar(0));
}

template <typename Scalar>
void SparseAssemblerT<Scalar>::finish() {
  if (fast_) {
    if (fast_index_ != frozen_codes_.size())
      throw std::logic_error(
          "SparseAssemblerT: trusted stream length mismatch");
    fast_ = false;
    fast_used_ = true;
    pattern_reused_ = true;
    return;
  }
  const std::size_t m = codes_.size();
  if (frozen_ && codes_ == frozen_codes_) {
    pattern_reused_ = true;
  } else {
    // Sort the add() stream by code (= r*n + c, so row-major order) to
    // build the CSR pattern and the add-index -> slot map.
    std::vector<std::int32_t> order(m);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [this](std::int32_t a, std::int32_t b) {
                return codes_[a] < codes_[b];
              });
    pattern_.n = n_;
    pattern_.row_ptr.assign(n_ + 1, 0);
    pattern_.cols.clear();
    slot_.assign(m, -1);
    std::uint64_t prev_code = 0;
    std::int32_t slot = -1;
    for (std::int32_t i : order) {
      const std::uint64_t code = codes_[i];
      if (slot < 0 || code != prev_code) {
        prev_code = code;
        ++slot;
        pattern_.cols.push_back(static_cast<std::int32_t>(code % n_));
        ++pattern_.row_ptr[code / n_ + 1];
      }
      slot_[i] = slot;
    }
    for (std::size_t r = 0; r < n_; ++r)
      pattern_.row_ptr[r + 1] += pattern_.row_ptr[r];
    frozen_codes_ = codes_;
    frozen_ = true;
  }
  values_.assign(pattern_.cols.size(), Scalar(0));
  for (std::size_t i = 0; i < m; ++i) values_[slot_[i]] += vals_[i];
}

// ---------------------------------------------------------------------------
// Minimum-degree ordering
// ---------------------------------------------------------------------------

std::vector<std::int32_t> minimum_degree_order(const CsrPattern& pattern) {
  const std::int32_t n = static_cast<std::int32_t>(pattern.n);
  std::vector<std::vector<std::int32_t>> adj(n);
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t idx = pattern.row_ptr[r]; idx < pattern.row_ptr[r + 1];
         ++idx) {
      const std::int32_t c = pattern.cols[idx];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<char> alive(n, 1);
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<std::int32_t> merged;
  for (std::int32_t step = 0; step < n; ++step) {
    std::int32_t best = -1;
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    for (std::int32_t v = 0; v < n; ++v) {
      if (alive[v] && adj[v].size() < best_degree) {
        best = v;
        best_degree = adj[v].size();
      }
    }
    order.push_back(best);
    alive[best] = 0;
    const std::vector<std::int32_t> clique = std::move(adj[best]);
    adj[best] = {};
    // Eliminating `best` joins its neighbors into a clique:
    // adj[u] := (adj[u] | clique) \ {u, best} for each neighbor u.
    for (std::int32_t u : clique) {
      merged.clear();
      const auto& a = adj[u];
      std::size_t ia = 0, ic = 0;
      while (ia < a.size() || ic < clique.size()) {
        std::int32_t v;
        if (ic == clique.size() || (ia < a.size() && a[ia] <= clique[ic])) {
          v = a[ia];
          if (ic < clique.size() && clique[ic] == v) ++ic;
          ++ia;
        } else {
          v = clique[ic++];
        }
        if (v != u && v != best) merged.push_back(v);
      }
      adj[u] = merged;
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// SparseSymbolic::analyze -- Gilbert-Peierls left-looking LU with
// threshold partial pivoting, recording structure and pivots.
// ---------------------------------------------------------------------------

template <typename Scalar>
std::shared_ptr<const SparseSymbolic> SparseSymbolic::analyze(
    const CsrPattern& pattern, const std::vector<Scalar>& values,
    double pivot_epsilon, double diag_preference) {
  const std::int32_t n = static_cast<std::int32_t>(pattern.n);
  if (values.size() != pattern.nnz())
    throw std::invalid_argument("SparseSymbolic::analyze: values/pattern size");

  auto sym = std::make_shared<SparseSymbolic>();
  sym->pattern = pattern;
  sym->qperm = minimum_degree_order(pattern);
  sym->pinv.assign(n, -1);
  sym->pivrow.assign(n, -1);

  // CSC view of the pattern with the map back into CSR value slots.
  // Scanning CSR rows in order leaves every CSC column sorted by row.
  sym->csc_ptr.assign(n + 1, 0);
  for (std::int32_t c : pattern.cols) ++sym->csc_ptr[c + 1];
  for (std::int32_t c = 0; c < n; ++c) sym->csc_ptr[c + 1] += sym->csc_ptr[c];
  sym->csc_rows.resize(pattern.nnz());
  sym->csc_csr.resize(pattern.nnz());
  {
    std::vector<std::int32_t> next(sym->csc_ptr.begin(),
                                   sym->csc_ptr.end() - 1);
    for (std::int32_t r = 0; r < n; ++r) {
      for (std::int32_t idx = pattern.row_ptr[r]; idx < pattern.row_ptr[r + 1];
           ++idx) {
        const std::int32_t c = pattern.cols[idx];
        sym->csc_rows[next[c]] = r;
        sym->csc_csr[next[c]] = idx;
        ++next[c];
      }
    }
  }

  sym->topo_ptr.assign(1, 0);
  sym->l_ptr.assign(1, 0);
  sym->u_ptr.assign(1, 0);

  std::vector<Scalar> x(n, Scalar(0));
  std::vector<Scalar> l_vals;  // numeric L, aligned with sym->l_rows
  std::vector<std::int32_t> mark(n, -1);
  std::vector<std::int32_t> post, stack, child;

  for (std::int32_t j = 0; j < n; ++j) {
    const std::int32_t col = sym->qperm[j];
    post.clear();

    // Reach of A(:,col) through the computed L columns; post-order DFS,
    // reversed below, gives the topological elimination order.
    for (std::int32_t idx = sym->csc_ptr[col]; idx < sym->csc_ptr[col + 1];
         ++idx) {
      const std::int32_t r0 = sym->csc_rows[idx];
      if (mark[r0] == j) continue;
      mark[r0] = j;
      stack.assign(1, r0);
      child.assign(1, sym->pinv[r0] >= 0 ? sym->l_ptr[sym->pinv[r0]] : 0);
      while (!stack.empty()) {
        const std::int32_t node = stack.back();
        const std::int32_t k = sym->pinv[node];
        bool descended = false;
        if (k >= 0) {
          std::int32_t ci = child.back();
          const std::int32_t end = sym->l_ptr[k + 1];
          while (ci < end) {
            const std::int32_t rr = sym->l_rows[ci++];
            if (mark[rr] != j) {
              mark[rr] = j;
              child.back() = ci;
              stack.push_back(rr);
              child.push_back(sym->pinv[rr] >= 0 ? sym->l_ptr[sym->pinv[rr]]
                                                 : 0);
              descended = true;
              break;
            }
          }
          if (!descended) child.back() = ci;
        }
        if (!descended) {
          post.push_back(node);
          stack.pop_back();
          child.pop_back();
        }
      }
    }

    // Numeric column: scatter A(:,col), eliminate in topological order.
    for (std::int32_t r : post) x[r] = Scalar(0);
    for (std::int32_t idx = sym->csc_ptr[col]; idx < sym->csc_ptr[col + 1];
         ++idx)
      x[sym->csc_rows[idx]] = values[sym->csc_csr[idx]];
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      const std::int32_t r = *it;
      const std::int32_t k = sym->pinv[r];
      if (k < 0) continue;
      const Scalar xr = x[r];
      if (xr == Scalar(0)) continue;
      for (std::int32_t li = sym->l_ptr[k]; li < sym->l_ptr[k + 1]; ++li)
        x[sym->l_rows[li]] -= l_vals[li] * xr;
    }

    // Threshold partial pivoting: largest candidate wins, but the
    // diagonal is kept when it is within diag_preference of the max
    // (stability without gratuitous permutation churn). Candidate scan
    // runs in topological order so ties break deterministically.
    double max_mag = 0.0;
    std::int32_t piv = -1;
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      const std::int32_t r = *it;
      if (sym->pinv[r] >= 0) continue;
      const double mag = std::abs(x[r]);
      if (mag > max_mag) {
        max_mag = mag;
        piv = r;
      }
    }
    if (piv < 0 || max_mag <= pivot_epsilon) return nullptr;
    if (mark[col] == j && sym->pinv[col] < 0 &&
        std::abs(x[col]) >= diag_preference * max_mag)
      piv = col;
    sym->pinv[piv] = j;
    sym->pivrow[j] = piv;
    const Scalar inv_piv = Scalar(1) / x[piv];

    // Record the column structure (topological order for determinism).
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      const std::int32_t r = *it;
      sym->topo_rows.push_back(r);
      if (r == piv) continue;
      const std::int32_t k = sym->pinv[r];
      if (k >= 0 && k < j) {
        sym->u_rows.push_back(r);
        sym->u_pos.push_back(k);
      } else {
        sym->l_rows.push_back(r);
        l_vals.push_back(x[r] * inv_piv);
      }
    }
    sym->topo_ptr.push_back(static_cast<std::int32_t>(sym->topo_rows.size()));
    sym->l_ptr.push_back(static_cast<std::int32_t>(sym->l_rows.size()));
    sym->u_ptr.push_back(static_cast<std::int32_t>(sym->u_rows.size()));
  }
  return sym;
}

// ---------------------------------------------------------------------------
// SparseFactorsT
// ---------------------------------------------------------------------------

template <typename Scalar>
bool SparseFactorsT<Scalar>::refactor(
    std::shared_ptr<const SparseSymbolic> symbolic,
    const std::vector<Scalar>& csr_values, double pivot_epsilon) {
  const SparseSymbolic& s = *symbolic;
  const std::int32_t n = static_cast<std::int32_t>(s.pattern.n);
  if (csr_values.size() != s.pattern.nnz())
    throw std::invalid_argument("SparseFactorsT::refactor: values size");

  l_vals_.resize(s.l_rows.size());
  u_vals_.resize(s.u_rows.size());
  udiag_.resize(n);
  x_.assign(n, Scalar(0));
  z_.resize(n);
  min_abs_pivot_ = n > 0 ? std::numeric_limits<double>::infinity() : 0.0;

  for (std::int32_t j = 0; j < n; ++j) {
    const std::int32_t col = s.qperm[j];
    for (std::int32_t t = s.topo_ptr[j]; t < s.topo_ptr[j + 1]; ++t)
      x_[s.topo_rows[t]] = Scalar(0);
    for (std::int32_t idx = s.csc_ptr[col]; idx < s.csc_ptr[col + 1]; ++idx)
      x_[s.csc_rows[idx]] = csr_values[s.csc_csr[idx]];
    for (std::int32_t t = s.topo_ptr[j]; t < s.topo_ptr[j + 1]; ++t) {
      const std::int32_t r = s.topo_rows[t];
      const std::int32_t k = s.pinv[r];
      if (k >= j) continue;
      const Scalar xr = x_[r];
      if (xr == Scalar(0)) continue;
      for (std::int32_t li = s.l_ptr[k]; li < s.l_ptr[k + 1]; ++li)
        x_[s.l_rows[li]] -= l_vals_[li] * xr;
    }
    const Scalar piv = x_[s.pivrow[j]];
    const double mag = std::abs(piv);
    if (mag <= pivot_epsilon) {
      symbolic_.reset();
      min_abs_pivot_ = mag;
      return false;
    }
    min_abs_pivot_ = std::min(min_abs_pivot_, mag);
    udiag_[j] = piv;
    const Scalar inv_piv = Scalar(1) / piv;
    for (std::int32_t ui = s.u_ptr[j]; ui < s.u_ptr[j + 1]; ++ui)
      u_vals_[ui] = x_[s.u_rows[ui]];
    for (std::int32_t li = s.l_ptr[j]; li < s.l_ptr[j + 1]; ++li)
      l_vals_[li] = x_[s.l_rows[li]] * inv_piv;
  }
  symbolic_ = std::move(symbolic);
  return true;
}

template <typename Scalar>
void SparseFactorsT<Scalar>::solve_into(const std::vector<Scalar>& b,
                                        std::vector<Scalar>& x) {
  if (!symbolic_)
    throw util::ConvergenceError(
        "SparseFactorsT::solve_into: no valid factorization");
  const SparseSymbolic& s = *symbolic_;
  const std::int32_t n = static_cast<std::int32_t>(s.pattern.n);
  if (b.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("SparseFactorsT::solve_into: rhs size");

  x.assign(b.begin(), b.end());
  // Forward substitution L z = P b, running in original-row space.
  for (std::int32_t j = 0; j < n; ++j) {
    const Scalar xj = x[s.pivrow[j]];
    if (xj == Scalar(0)) continue;
    for (std::int32_t li = s.l_ptr[j]; li < s.l_ptr[j + 1]; ++li)
      x[s.l_rows[li]] -= l_vals_[li] * xj;
  }
  // Back substitution U y = z in pivot space; U's off-diagonals are
  // stored column-wise with their pivot positions.
  for (std::int32_t j = n - 1; j >= 0; --j) {
    const Scalar zj = x[s.pivrow[j]] / udiag_[j];
    z_[j] = zj;
    if (zj == Scalar(0)) continue;
    for (std::int32_t ui = s.u_ptr[j]; ui < s.u_ptr[j + 1]; ++ui)
      x[s.pivrow[s.u_pos[ui]]] -= u_vals_[ui] * zj;
  }
  // Undo the column permutation: factor column j is A column qperm[j].
  for (std::int32_t j = 0; j < n; ++j) x[s.qperm[j]] = z_[j];
}

template <typename Scalar>
void SparseFactorsT<Scalar>::solve_multi(
    const std::vector<const std::vector<Scalar>*>& rhs,
    std::vector<std::vector<Scalar>>& x) {
  if (!symbolic_)
    throw util::ConvergenceError(
        "SparseFactorsT::solve_multi: no valid factorization");
  const SparseSymbolic& s = *symbolic_;
  const std::int32_t n = static_cast<std::int32_t>(s.pattern.n);
  const std::size_t k = rhs.size();
  x.resize(k);
  for (std::size_t m = 0; m < k; ++m) {
    if (rhs[m]->size() != static_cast<std::size_t>(n))
      throw std::invalid_argument("SparseFactorsT::solve_multi: rhs size");
    x[m].assign(rhs[m]->begin(), rhs[m]->end());
  }
  // One sweep over the factor columns, all right-hand sides advanced in
  // lockstep: the L/U column data is touched once per pivot instead of
  // once per (pivot, rhs). Each rhs still sees solve_into's exact
  // per-column operation sequence, so results are bit-identical to k
  // individual solves.
  std::vector<std::vector<Scalar>> z(k, std::vector<Scalar>(n));
  for (std::int32_t j = 0; j < n; ++j) {
    for (std::size_t m = 0; m < k; ++m) {
      std::vector<Scalar>& xm = x[m];
      const Scalar xj = xm[s.pivrow[j]];
      if (xj == Scalar(0)) continue;
      for (std::int32_t li = s.l_ptr[j]; li < s.l_ptr[j + 1]; ++li)
        xm[s.l_rows[li]] -= l_vals_[li] * xj;
    }
  }
  for (std::int32_t j = n - 1; j >= 0; --j) {
    for (std::size_t m = 0; m < k; ++m) {
      std::vector<Scalar>& xm = x[m];
      const Scalar zj = xm[s.pivrow[j]] / udiag_[j];
      z[m][j] = zj;
      if (zj == Scalar(0)) continue;
      for (std::int32_t ui = s.u_ptr[j]; ui < s.u_ptr[j + 1]; ++ui)
        xm[s.pivrow[s.u_pos[ui]]] -= u_vals_[ui] * zj;
    }
  }
  for (std::size_t m = 0; m < k; ++m)
    for (std::int32_t j = 0; j < n; ++j) x[m][s.qperm[j]] = z[m][j];
}

// Explicit instantiations: the real (DC/transient) and complex (AC)
// engines are the only scalar fields in the codebase.
template class SparseAssemblerT<double>;
template class SparseAssemblerT<std::complex<double>>;
template class SparseFactorsT<double>;
template class SparseFactorsT<std::complex<double>>;
template std::shared_ptr<const SparseSymbolic> SparseSymbolic::analyze<double>(
    const CsrPattern&, const std::vector<double>&, double, double);
template std::shared_ptr<const SparseSymbolic>
SparseSymbolic::analyze<std::complex<double>>(
    const CsrPattern&, const std::vector<std::complex<double>>&, double,
    double);

}  // namespace dot::numeric
