// Sparse linear-solver subsystem for the MNA engine.
//
// MNA matrices have a handful of entries per device stamp, so past a
// few dozen unknowns the dense O(n^3) LU in the Newton loop dominates
// every fault-simulation campaign. This module provides:
//
//  - SparseAssemblerT: triplet accumulation into CSR with *pattern
//    freezing* -- the stamp sequence of a fixed netlist is identical
//    every Newton iteration, so after the first assembly the (row,col)
//    stream is recognized and values are scattered straight into the
//    cached CSR slots (no sort, no dense n*n clear).
//  - minimum_degree_order: greedy fill-reducing ordering on the
//    symmetrized pattern.
//  - SparseSymbolic: one-time "analyze" pass (Gilbert-Peierls LU with
//    threshold partial pivoting on a representative numeric matrix)
//    that records the column ordering, the pivot sequence and the fill
//    pattern of L and U. Immutable and shareable across threads: the
//    per-macro campaign contexts cache it for the golden netlist.
//  - SparseFactorsT: fast numeric *refactorization* over a cached
//    SparseSymbolic -- fixed pattern, fixed pivots, pure flops. This is
//    the per-Newton-iteration hot path. A pivot that collapses below
//    epsilon (values drifted too far from the analyzed matrix) makes
//    refactor() fail so the caller can re-analyze or fall back to the
//    dense partial-pivoting solver.
//
// Everything is templated over the scalar so the AC engine reuses the
// same machinery over std::complex<double> (the symbolic analysis is
// structure-plus-pivots and is shared between field types).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dot::numeric {

/// Compressed-sparse-row structure (no values): row_ptr has n+1
/// entries; cols holds the column indices of each row in ascending
/// order with no duplicates.
struct CsrPattern {
  std::size_t n = 0;
  std::vector<std::int32_t> row_ptr;
  std::vector<std::int32_t> cols;

  std::size_t nnz() const { return cols.size(); }
  bool operator==(const CsrPattern&) const = default;
};

/// Pattern-freezing triplet assembler (see file comment). Usage:
///   begin(n); add(r, c, v)...; finish();
/// then pattern() / values() expose the CSR system. A second assembly
/// with the identical (r, c) stream reuses the frozen pattern and only
/// rewrites values (pattern_reused() reports which path ran).
///
/// Trusted streams: begin(n, tag) with a nonzero tag declares that the
/// upcoming add() stream is identical to the last one frozen under the
/// same tag (a fixed netlist stamped in a fixed analysis mode). The
/// assembler then skips the code push and comparison entirely and
/// scatters each add() straight into its cached CSR slot -- the batched
/// fault-evaluation hot path. Accumulation order is unchanged (stream
/// order into slots), so the values are bit-identical to the checked
/// path. A tag or size change refreezes from scratch; tag 0 always runs
/// the checked path.
template <typename Scalar>
class SparseAssemblerT {
 public:
  void begin(std::size_t n, std::uint32_t stream_tag = 0);
  void add(std::size_t r, std::size_t c, Scalar v) {
    if (fast_) {
      values_[static_cast<std::size_t>(slot_[fast_index_++])] += v;
      return;
    }
    codes_.push_back(static_cast<std::uint64_t>(r) * n_ + c);
    vals_.push_back(v);
  }
  void finish();

  /// Number of add() calls so far this round (device bracketing for
  /// the stamp-plan capture in assemble_mna).
  std::size_t cursor() const { return fast_ ? fast_index_ : vals_.size(); }
  /// Whether this round runs the trusted (slot-scatter) path.
  bool fast_active() const { return fast_; }
  /// CSR value slot of stream position `pos` (valid once frozen; the
  /// stamp-plan capture reads the slots its device occupied).
  std::int32_t slot_at(std::size_t pos) const { return slot_[pos]; }
  /// Precompiled stamp segment (see spice::MosStampPlan): applies
  /// `count` adds as values_[slots[i]] += signs[i] * fields[srcs[i]],
  /// advancing the trusted-stream cursor. Bit-identical to the add()
  /// calls it replaces: the slots are the exact stream positions and
  /// +/-1.0 multiplies are exact in IEEE arithmetic.
  void apply_plan(const std::int32_t* slots, const double* signs,
                  const std::int32_t* srcs, std::size_t count,
                  const Scalar* fields) {
    for (std::size_t i = 0; i < count; ++i)
      values_[static_cast<std::size_t>(slots[i])] +=
          signs[i] * fields[static_cast<std::size_t>(srcs[i])];
    fast_index_ += count;
  }

  std::size_t size() const { return n_; }
  const CsrPattern& pattern() const { return pattern_; }
  const std::vector<Scalar>& values() const { return values_; }
  bool pattern_reused() const { return pattern_reused_; }
  /// Whether the last finish() ran the trusted (slot-scatter) path.
  bool fast_path_used() const { return fast_used_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> codes_;         ///< r*n+c per add() this round.
  std::vector<Scalar> vals_;                 ///< parallel to codes_.
  std::vector<std::uint64_t> frozen_codes_;  ///< add() stream of the pattern.
  std::vector<std::int32_t> slot_;           ///< add() index -> CSR slot.
  CsrPattern pattern_;
  std::vector<Scalar> values_;
  bool frozen_ = false;
  bool pattern_reused_ = false;
  std::uint32_t frozen_tag_ = 0;  ///< Tag the pattern was frozen under.
  bool fast_ = false;             ///< Trusted scatter active this round.
  bool fast_used_ = false;
  std::size_t fast_index_ = 0;    ///< add() counter on the trusted path.
};

using SparseAssembler = SparseAssemblerT<double>;
using ComplexSparseAssembler = SparseAssemblerT<std::complex<double>>;

/// Greedy minimum-degree ordering of the symmetrized pattern (graph of
/// A + A^T). Returns the elimination order: position j is filled by
/// original row/column order[j]. Deterministic (ties break on index).
std::vector<std::int32_t> minimum_degree_order(const CsrPattern& pattern);

/// Result of the one-time analyze pass: column ordering (minimum
/// degree), row pivot sequence (threshold partial pivoting on the
/// representative matrix), fill pattern of L and U, and the scatter
/// maps used by refactorization. Immutable after analyze(); share it
/// across threads freely.
///
/// The raw index arrays are public for SparseFactorsT and the tests;
/// treat them as read-only.
class SparseSymbolic {
 public:
  /// Runs Gilbert-Peierls LU with threshold partial pivoting (diagonal
  /// preferred within `diag_preference` of the column maximum) on the
  /// given matrix and records the structural outcome. Returns nullptr
  /// when the matrix is numerically singular at `pivot_epsilon`.
  template <typename Scalar>
  static std::shared_ptr<const SparseSymbolic> analyze(
      const CsrPattern& pattern, const std::vector<Scalar>& values,
      double pivot_epsilon = 1e-13, double diag_preference = 0.1);

  std::size_t size() const { return pattern.n; }
  std::size_t l_nnz() const { return l_rows.size(); }
  std::size_t u_nnz() const { return u_rows.size() + pattern.n; }
  /// Total factor entries (L + U including the diagonal); compare with
  /// pattern.nnz() to see the fill the ordering admitted.
  std::size_t factor_nnz() const { return l_nnz() + u_nnz(); }

  CsrPattern pattern;                ///< The analyzed matrix structure.
  std::vector<std::int32_t> qperm;   ///< factor column j = A column qperm[j].
  std::vector<std::int32_t> pinv;    ///< original row -> pivot position.
  std::vector<std::int32_t> pivrow;  ///< pivot position -> original row.
  /// CSC view of `pattern` plus the map back into CSR value slots.
  std::vector<std::int32_t> csc_ptr, csc_rows, csc_csr;
  /// Per factor column j: the reach (nonzero set) in topological order,
  /// original row indices.
  std::vector<std::int32_t> topo_ptr, topo_rows;
  /// L columns: rows strictly below the pivot (original indices), unit
  /// diagonal implicit.
  std::vector<std::int32_t> l_ptr, l_rows;
  /// U columns excluding the diagonal: original row and pivot position.
  std::vector<std::int32_t> u_ptr, u_rows, u_pos;
};

/// Numeric LU factors over a cached SparseSymbolic. refactor() is the
/// hot path: no reach, no pivot search, just sparse flops in the
/// recorded order.
template <typename Scalar>
class SparseFactorsT {
 public:
  /// Factors the CSR values (matching symbolic->pattern) with the
  /// recorded pivot sequence. Returns false -- and invalidates the
  /// factors -- when a pivot magnitude drops to `pivot_epsilon`.
  bool refactor(std::shared_ptr<const SparseSymbolic> symbolic,
                const std::vector<Scalar>& csr_values,
                double pivot_epsilon = 1e-13);

  bool valid() const { return symbolic_ != nullptr; }
  double min_abs_pivot() const { return min_abs_pivot_; }
  const std::shared_ptr<const SparseSymbolic>& symbolic() const {
    return symbolic_;
  }

  /// Solves A x = b (original row/column space). Throws
  /// util::ConvergenceError when no valid factorization is held.
  void solve_into(const std::vector<Scalar>& b, std::vector<Scalar>& x);

  /// Multi-RHS solve: one triangular sweep per right-hand side over the
  /// shared factors (the batched Newton path solves all sibling fault
  /// members against one factorization). Each column's arithmetic is
  /// exactly solve_into's, so result k is bit-identical to an
  /// individual solve of rhs[k].
  void solve_multi(const std::vector<const std::vector<Scalar>*>& rhs,
                   std::vector<std::vector<Scalar>>& x);

 private:
  std::shared_ptr<const SparseSymbolic> symbolic_;
  std::vector<Scalar> l_vals_, u_vals_, udiag_;
  std::vector<Scalar> x_;  ///< dense scratch (factor + solve).
  std::vector<Scalar> z_;  ///< pivot-space scratch (solve).
  double min_abs_pivot_ = 0.0;
};

using SparseFactors = SparseFactorsT<double>;
using ComplexSparseFactors = SparseFactorsT<std::complex<double>>;

}  // namespace dot::numeric
