// LU factorization with partial pivoting. This is the single linear
// solver behind every DC operating point and every transient time step.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"

namespace dot::numeric {

/// Factorization of a square matrix A as P*A = L*U. Throws
/// util::ConvergenceError (via solve()) when A is numerically singular.
class LuFactorization {
 public:
  /// Factors a copy of A. `singular()` reports whether a zero (or
  /// sub-epsilon) pivot was hit; solve() on a singular factorization
  /// throws.
  explicit LuFactorization(Matrix a, double pivot_epsilon = 1e-13);

  bool singular() const { return singular_; }
  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Estimated reciprocal pivot growth; tiny values signal an
  /// ill-conditioned system (useful for fault-sim diagnostics).
  double min_abs_pivot() const { return min_abs_pivot_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
  double min_abs_pivot_ = 0.0;
};

/// One-shot convenience: solves A x = b, throwing on singular A.
std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b);

}  // namespace dot::numeric
