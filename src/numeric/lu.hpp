// LU factorization with partial pivoting. This is the dense linear
// solver behind small DC operating points and transient time steps;
// systems past the sparse crossover go through numeric/sparse.hpp.
// The pivoting kernel itself lives in numeric/dense_lu.hpp, shared
// with the complex (AC) variant.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense_lu.hpp"
#include "numeric/matrix.hpp"

namespace dot::numeric {

/// Real dense LU with workspace reuse: assemble into matrix(), then
/// factor() in place.
using DenseLu = DenseLuT<Matrix, double>;

/// Factorization of a square matrix A as P*A = L*U. Throws
/// util::ConvergenceError (via solve()) when A is numerically singular.
class LuFactorization {
 public:
  /// Factors `a` (moved in). `singular()` reports whether a zero (or
  /// sub-epsilon) pivot was hit; solve() on a singular factorization
  /// throws.
  explicit LuFactorization(Matrix a, double pivot_epsilon = 1e-13)
      : impl_(std::move(a), pivot_epsilon) {}

  bool singular() const { return impl_.singular(); }
  std::size_t size() const { return impl_.size(); }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const {
    return impl_.solve(b);
  }

  /// Estimated reciprocal pivot growth; tiny values signal an
  /// ill-conditioned system (useful for fault-sim diagnostics).
  double min_abs_pivot() const { return impl_.min_abs_pivot(); }

 private:
  DenseLu impl_;
};

/// One-shot convenience: solves A x = b, throwing on singular A.
std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b);

}  // namespace dot::numeric
