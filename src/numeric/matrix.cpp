#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dot::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

std::string Matrix::str(int decimals) const {
  std::ostringstream os;
  os.precision(decimals);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : " ") << (*this)(r, c);
    }
    os << '\n';
  }
  return os.str();
}

double norm_inf(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::fabs(x));
  return best;
}

double norm_2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("subtract: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace dot::numeric
