#include "numeric/schur.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dot::numeric {

namespace {

/// Largest diff support an SMW update handles before a plain block
/// refactorization is cheaper (the K system is rank x rank dense).
constexpr std::size_t kMaxLowRank = 4;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Slot of (row, col) in a CSR pattern, by binary search over the row
/// segment. Returns -1 when absent.
std::int32_t find_slot(const CsrPattern& p, std::int32_t row,
                       std::int32_t col) {
  const auto* begin = p.cols.data() + p.row_ptr[row];
  const auto* end = p.cols.data() + p.row_ptr[row + 1];
  const auto* it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return -1;
  return static_cast<std::int32_t>(it - p.cols.data());
}

}  // namespace

bool SchurSolver::analyze(const CsrPattern& pattern,
                          const BlockPartition& partition) {
  analyzed_ = false;
  factored_ = false;
  have_frozen_ = false;
  smw_active_ = false;
  s_symbolic_.reset();
  if (partition.trivial() || partition.n != pattern.n ||
      partition.block_of.size() != pattern.n)
    return false;

  const std::size_t n = pattern.n;
  pattern_ = pattern;
  part_ = partition;
  block_of_ = partition.block_of;
  blocks_.assign(partition.block_count, Block{});
  iface_.clear();
  local_index_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t b = block_of_[i];
    if (b < 0) {
      local_index_[i] = static_cast<std::int32_t>(iface_.size());
      iface_.push_back(static_cast<std::int32_t>(i));
    } else {
      if (static_cast<std::size_t>(b) >= blocks_.size()) return false;
      local_index_[i] = static_cast<std::int32_t>(blocks_[b].unknowns.size());
      blocks_[b].unknowns.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (const Block& blk : blocks_)
    if (blk.unknowns.empty()) return false;

  // Classify every nonzero into the A_k / E_k / F_k / C regions. A slot
  // coupling two distinct blocks breaks the arrowhead; reject so the
  // caller keeps the flat path (the partition builder demotes such nets
  // to the interface, so this is a safety net, not a working path).
  c_slots_.clear();
  c_region_slots_.clear();
  for (std::size_t r = 0; r < n; ++r) {
    const std::int32_t br = block_of_[r];
    for (std::size_t s = pattern.row_ptr[r];
         s < static_cast<std::size_t>(pattern.row_ptr[r + 1]); ++s) {
      const std::int32_t c = pattern.cols[s];
      const std::int32_t bc = block_of_[c];
      const auto slot = static_cast<std::int32_t>(s);
      if (br >= 0 && bc >= 0) {
        if (br != bc) return false;
        blocks_[br].a.push_back({local_index_[r], local_index_[c], slot});
        blocks_[br].slots.push_back(slot);
      } else if (br >= 0) {  // Block row, interface column: E region.
        blocks_[br].e.push_back({local_index_[r], local_index_[c], -1, slot});
        blocks_[br].slots.push_back(slot);
      } else if (bc >= 0) {  // Interface row, block column: F region.
        blocks_[bc].f.push_back({local_index_[r], -1, local_index_[c], slot});
        blocks_[bc].slots.push_back(slot);
      } else {
        c_slots_.push_back({-1, slot});
        c_region_slots_.push_back(slot);
      }
    }
  }

  // Per-block interface footprint: the unique interface columns E_k
  // touches and rows F_k touches span the dense W_k patch of the Schur
  // complement.
  for (Block& blk : blocks_) {
    std::sort(blk.slots.begin(), blk.slots.end());
    blk.e_cols.clear();
    blk.f_rows.clear();
    for (const ESlot& es : blk.e) blk.e_cols.push_back(es.ic);
    for (const FSlot& fs : blk.f) blk.f_rows.push_back(fs.ir);
    std::sort(blk.e_cols.begin(), blk.e_cols.end());
    blk.e_cols.erase(std::unique(blk.e_cols.begin(), blk.e_cols.end()),
                     blk.e_cols.end());
    std::sort(blk.f_rows.begin(), blk.f_rows.end());
    blk.f_rows.erase(std::unique(blk.f_rows.begin(), blk.f_rows.end()),
                     blk.f_rows.end());
    for (ESlot& es : blk.e)
      es.ecp = static_cast<std::int32_t>(
          std::lower_bound(blk.e_cols.begin(), blk.e_cols.end(), es.ic) -
          blk.e_cols.begin());
    for (FSlot& fs : blk.f)
      fs.frp = static_cast<std::int32_t>(
          std::lower_bound(blk.f_rows.begin(), blk.f_rows.end(), fs.ir) -
          blk.f_rows.begin());
    const std::size_t nb = blk.unknowns.size();
    const std::size_t cb = blk.e_cols.size();
    const std::size_t rb = blk.f_rows.size();
    blk.lu.matrix() = Matrix(nb, nb);
    blk.w.assign(rb * cb, 0.0);
    blk.w_delta.assign(rb * cb, 0.0);
    blk.ainv_e.assign(nb * cb, 0.0);
    blk.zmat.assign(nb * kMaxLowRank, 0.0);
  }

  // Schur-complement pattern: the C slots plus each block's dense
  // f_rows x e_cols patch, in interface-local coordinates.
  const std::size_t m = iface_.size();
  if (m > 0) {
    std::vector<std::vector<std::int32_t>> row_cols(m);
    for (std::size_t r = 0; r < n; ++r) {
      if (block_of_[r] >= 0) continue;
      const std::int32_t ir = local_index_[r];
      for (std::size_t s = pattern.row_ptr[r];
           s < static_cast<std::size_t>(pattern.row_ptr[r + 1]); ++s) {
        const std::int32_t c = pattern.cols[s];
        if (block_of_[c] < 0) row_cols[ir].push_back(local_index_[c]);
      }
    }
    for (const Block& blk : blocks_)
      for (const std::int32_t fr : blk.f_rows)
        row_cols[fr].insert(row_cols[fr].end(), blk.e_cols.begin(),
                            blk.e_cols.end());
    s_pattern_.n = m;
    s_pattern_.row_ptr.assign(m + 1, 0);
    s_pattern_.cols.clear();
    for (std::size_t ir = 0; ir < m; ++ir) {
      auto& cols = row_cols[ir];
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      s_pattern_.cols.insert(s_pattern_.cols.end(), cols.begin(), cols.end());
      s_pattern_.row_ptr[ir + 1] =
          static_cast<std::int32_t>(s_pattern_.cols.size());
    }
    s_values_.assign(s_pattern_.nnz(), 0.0);
    // Slot maps into the S values: one per C entry, one per W cell.
    std::size_t ci = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (block_of_[r] >= 0) continue;
      for (std::size_t s = pattern.row_ptr[r];
           s < static_cast<std::size_t>(pattern.row_ptr[r + 1]); ++s) {
        const std::int32_t c = pattern.cols[s];
        if (block_of_[c] >= 0) continue;
        c_slots_[ci++].s_slot =
            find_slot(s_pattern_, local_index_[r], local_index_[c]);
      }
    }
    for (Block& blk : blocks_) {
      const std::size_t cb = blk.e_cols.size();
      blk.w_slot.assign(blk.f_rows.size() * cb, -1);
      for (std::size_t p = 0; p < blk.f_rows.size(); ++p)
        for (std::size_t j = 0; j < cb; ++j)
          blk.w_slot[p * cb + j] =
              find_slot(s_pattern_, blk.f_rows[p], blk.e_cols[j]);
    }
  } else {
    s_pattern_ = CsrPattern{};
    s_values_.clear();
  }

  frozen_.assign(pattern.nnz(), 0.0);
  cur_.assign(pattern.nnz(), 0.0);
  scratch_y_.assign(n, 0.0);
  scratch_i_.assign(m, 0.0);
  scratch_xi_.assign(m, 0.0);
  scratch_r_.assign(n, 0.0);
  scratch_d_.assign(n, 0.0);
  stats_ = Stats{};
  analyzed_ = true;
  return true;
}

bool SchurSolver::refresh_block(Block& blk, const std::vector<double>& values) {
  const std::size_t cb = blk.e_cols.size();
  for (const std::int32_t s : blk.slots) frozen_[s] = values[s];
  Matrix& a = blk.lu.matrix();
  a.fill(0.0);
  for (const ASlot& as : blk.a) a(as.r, as.c) += frozen_[as.slot];
  blk.smw = false;
  if (!blk.lu.factor(pivot_epsilon_)) return false;
  // Cache A^-1 E (reused by the SMW update) and the Schur patch
  // W = F A^-1 E. All interface columns go through one multi-RHS
  // substitution: a column-at-a-time loop re-walks L and U per column,
  // and with hundreds of tiny blocks refreshed per Newton iterate that
  // walk is the dominant factor-phase cost.
  std::fill(blk.ainv_e.begin(), blk.ainv_e.end(), 0.0);
  for (const ESlot& es : blk.e)
    blk.ainv_e[static_cast<std::size_t>(es.lr) * cb +
               static_cast<std::size_t>(es.ecp)] += frozen_[es.slot];
  if (cb > 0) blk.lu.solve_multi_into(blk.ainv_e, cb, scratch_multi_);
  std::fill(blk.w.begin(), blk.w.end(), 0.0);
  for (const FSlot& fs : blk.f) {
    const double fv = frozen_[fs.slot];
    const double* row = blk.ainv_e.data() + fs.lc * cb;
    double* wrow = blk.w.data() + fs.frp * cb;
    for (std::size_t j = 0; j < cb; ++j) wrow[j] += fv * row[j];
  }
  ++stats_.block_refreshes;
  return true;
}

bool SchurSolver::try_lowrank(Block& blk, const std::vector<double>& values) {
  // Collect the A-region diff: A_cur = A_frozen + sum_i d_i e_ri e_ci^T.
  std::int32_t rows[kMaxLowRank], cols[kMaxLowRank];
  double delta[kMaxLowRank];
  std::size_t rank = 0;
  for (const ASlot& as : blk.a) {
    if (values[as.slot] == frozen_[as.slot]) continue;
    if (rank == kMaxLowRank) return false;
    rows[rank] = as.r;
    cols[rank] = as.c;
    delta[rank] = values[as.slot] - frozen_[as.slot];
    ++rank;
  }
  if (rank == 0) return false;
  const std::size_t nb = blk.unknowns.size();
  const std::size_t cb = blk.e_cols.size();
  const std::size_t rb = blk.f_rows.size();
  // Z = A_frozen^-1 U, column i = d_i * A^-1 e_{rows[i]}.
  scratch_b_.assign(nb, 0.0);
  for (std::size_t i = 0; i < rank; ++i) {
    std::fill(scratch_b_.begin(), scratch_b_.end(), 0.0);
    scratch_b_[rows[i]] = delta[i];
    blk.lu.solve_into(scratch_b_, scratch_x_);
    for (std::size_t j = 0; j < nb; ++j) blk.zmat[i * nb + j] = scratch_x_[j];
  }
  // K = I + V^T Z, K(i,j) = delta_ij + Z(cols[i], j).
  Matrix k(rank, rank);
  for (std::size_t i = 0; i < rank; ++i)
    for (std::size_t j = 0; j < rank; ++j)
      k(i, j) = (i == j ? 1.0 : 0.0) + blk.zmat[j * nb + cols[i]];
  blk.kfac.matrix() = std::move(k);
  if (!blk.kfac.factor(pivot_epsilon_)) return false;
  // The Schur patch moves too: W_cur = W_frozen - (F Z) K^-1 (V^T A^-1 E).
  scratch_t_.assign(rb * rank, 0.0);  // F*Z, rb x rank.
  for (const FSlot& fs : blk.f) {
    const double fv = frozen_[fs.slot];
    for (std::size_t i = 0; i < rank; ++i)
      scratch_t_[fs.frp * rank + i] += fv * blk.zmat[i * nb + fs.lc];
  }
  // T = K^-1 (V^T A^-1 E), column by column (cb columns of rank height).
  scratch_s_.assign(rank * cb, 0.0);
  std::vector<double>& rhs = scratch_b_;
  for (std::size_t j = 0; j < cb; ++j) {
    rhs.assign(rank, 0.0);
    for (std::size_t i = 0; i < rank; ++i)
      rhs[i] = blk.ainv_e[cols[i] * cb + j];
    blk.kfac.solve_into(rhs, scratch_x_);
    for (std::size_t i = 0; i < rank; ++i)
      scratch_s_[i * cb + j] = scratch_x_[i];
  }
  std::fill(blk.w_delta.begin(), blk.w_delta.end(), 0.0);
  for (std::size_t p = 0; p < rb; ++p)
    for (std::size_t i = 0; i < rank; ++i) {
      const double f = scratch_t_[p * rank + i];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < cb; ++j)
        blk.w_delta[p * cb + j] -= f * scratch_s_[i * cb + j];
    }
  blk.smw = true;
  blk.smw_rows.assign(rows, rows + rank);
  blk.smw_cols.assign(cols, cols + rank);
  ++stats_.lowrank_updates;
  return true;
}

bool SchurSolver::refactor_schur() {
  if (iface_.empty()) return true;
  std::fill(s_values_.begin(), s_values_.end(), 0.0);
  for (const CSlot& cs : c_slots_) s_values_[cs.s_slot] += frozen_[cs.slot];
  for (const Block& blk : blocks_) {
    const std::size_t cells = blk.w.size();
    for (std::size_t p = 0; p < cells; ++p) {
      double w = blk.w[p];
      if (blk.smw) w += blk.w_delta[p];
      s_values_[blk.w_slot[p]] -= w;
    }
  }
  if (!s_symbolic_) {
    s_symbolic_ = SparseSymbolic::analyze(s_pattern_, s_values_,
                                          pivot_epsilon_);
    if (!s_symbolic_) return false;
  }
  if (!s_factors_.refactor(s_symbolic_, s_values_, pivot_epsilon_)) {
    // Pivot collapse under the recorded sequence: re-analyze once with
    // the current values before giving up.
    s_symbolic_ = SparseSymbolic::analyze(s_pattern_, s_values_,
                                          pivot_epsilon_);
    if (!s_symbolic_ ||
        !s_factors_.refactor(s_symbolic_, s_values_, pivot_epsilon_))
      return false;
  }
  ++stats_.schur_refactors;
  return true;
}

bool SchurSolver::factor(const std::vector<double>& values,
                         SchurPhaseSplit* split) {
  // Demotion ladder: a singular block is merged into the interface and
  // the factor retried on the coarser partition. Each demotion strictly
  // shrinks block_count, so the loop terminates.
  for (;;) {
    const int failed = factor_once(values, split);
    if (failed == kFactorOk) return true;
    if (failed == kFactorAbort) return false;
    if (!demote_block(static_cast<std::size_t>(failed))) return false;
  }
}

bool SchurSolver::demote_block(std::size_t k) {
  BlockPartition part = part_;
  for (std::size_t i = 0; i < part.block_of.size(); ++i) {
    if (part.block_of[i] == static_cast<std::int32_t>(k))
      part.block_of[i] = -1;
    else if (part.block_of[i] > static_cast<std::int32_t>(k))
      --part.block_of[i];
  }
  --part.block_count;
  // analyze() resets the counters (fresh-partition semantics); an
  // internal demotion is a continuation of the same run, so preserve
  // them. Copy the pattern out: analyze assigns pattern_ from its
  // argument and must not read a reference into the member it writes.
  const Stats saved = stats_;
  const CsrPattern pattern = pattern_;
  const bool ok = analyze(pattern, part);
  stats_ = saved;
  if (ok) ++stats_.block_demotions;
  return ok;
}

int SchurSolver::factor_once(const std::vector<double>& values,
                             SchurPhaseSplit* split) {
  if (!analyzed_ || values.size() != frozen_.size()) return kFactorAbort;
  factored_ = false;
  const double t0 = split ? now_seconds() : 0.0;
  const bool first = !have_frozen_;
  bool s_dirty = false;
  if (!have_frozen_) {
    for (Block& blk : blocks_)
      if (!refresh_block(blk, values))
        return static_cast<int>(&blk - blocks_.data());
    for (const std::int32_t s : c_region_slots_) frozen_[s] = values[s];
    s_dirty = true;
    have_frozen_ = true;
  } else {
    for (Block& blk : blocks_) {
      bool diff = false;
      for (const std::int32_t s : blk.slots)
        if (values[s] != frozen_[s]) {
          diff = true;
          break;
        }
      if (!diff) {
        // Bit-identical block: the frozen factor IS the current
        // operator. A leftover SMW correction (values returned to the
        // frozen state) must be dropped.
        if (blk.smw) {
          blk.smw = false;
          s_dirty = true;
        }
        ++stats_.block_reuses;
        continue;
      }
      bool ef_clean = true;
      for (const ESlot& es : blk.e)
        if (values[es.slot] != frozen_[es.slot]) {
          ef_clean = false;
          break;
        }
      if (ef_clean)
        for (const FSlot& fs : blk.f)
          if (values[fs.slot] != frozen_[fs.slot]) {
            ef_clean = false;
            break;
          }
      if (ef_clean && try_lowrank(blk, values)) {
        s_dirty = true;
        continue;
      }
      if (!refresh_block(blk, values))
        return static_cast<int>(&blk - blocks_.data());
      s_dirty = true;
    }
    for (const std::int32_t s : c_region_slots_)
      if (values[s] != frozen_[s]) {
        s_dirty = true;
        break;
      }
    if (s_dirty)
      for (const std::int32_t s : c_region_slots_) frozen_[s] = values[s];
  }
  const double t1 = split ? now_seconds() : 0.0;
  if (s_dirty && !refactor_schur()) return kFactorAbort;
  if (split) {
    const double t2 = now_seconds();
    // The diff scan + SMW bookkeeping is the "reuse" bucket; block and
    // interface refactorization is "numeric". The first call factors
    // everything from scratch, so all of it is numeric work. (The
    // one-time pattern classification in analyze() is accounted by the
    // caller.)
    split->reuse_seconds += first ? 0.0 : t1 - t0;
    split->numeric_seconds += first ? t2 - t0 : t2 - t1;
  }
  smw_active_ = false;
  for (const Block& blk : blocks_)
    if (blk.smw) smw_active_ = true;
  // The true-value snapshot feeds solve()'s residual refinement and
  // the stagnation recovery, both reachable only under a live SMW
  // correction -- skipping the O(nnz) copy otherwise is a measurable
  // win at full-chip sizes.
  if (smw_active_) cur_ = values;
  factored_ = true;
  return kFactorOk;
}

void SchurSolver::block_solve(const Block& blk, const std::vector<double>& rhs,
                              std::vector<double>& out) {
  blk.lu.solve_into(rhs, out);
  if (!blk.smw) return;
  const std::size_t rank = blk.smw_rows.size();
  const std::size_t nb = blk.unknowns.size();
  scratch_t_.assign(rank, 0.0);
  for (std::size_t i = 0; i < rank; ++i)
    scratch_t_[i] = out[blk.smw_cols[i]];
  blk.kfac.solve_into(scratch_t_, scratch_s_);
  for (std::size_t i = 0; i < rank; ++i) {
    const double s = scratch_s_[i];
    if (s == 0.0) continue;
    const double* z = blk.zmat.data() + i * nb;
    for (std::size_t j = 0; j < nb; ++j) out[j] -= z[j] * s;
  }
}

void SchurSolver::m_solve(const std::vector<double>& b,
                          std::vector<double>& x) {
  const std::size_t n = pattern_.n;
  x.assign(n, 0.0);
  // Forward block elimination: y_k = A_k^-1 b_k.
  for (Block& blk : blocks_) {
    const std::size_t nb = blk.unknowns.size();
    scratch_b_.resize(nb);
    for (std::size_t i = 0; i < nb; ++i) scratch_b_[i] = b[blk.unknowns[i]];
    block_solve(blk, scratch_b_, scratch_x_);
    for (std::size_t i = 0; i < nb; ++i)
      scratch_y_[blk.unknowns[i]] = scratch_x_[i];
  }
  // Interface solve: S x_I = b_I - sum_k F_k y_k.
  const std::size_t m = iface_.size();
  for (std::size_t ic = 0; ic < m; ++ic) scratch_i_[ic] = b[iface_[ic]];
  for (const Block& blk : blocks_)
    for (const FSlot& fs : blk.f)
      scratch_i_[fs.ir] -= frozen_[fs.slot] * scratch_y_[blk.unknowns[fs.lc]];
  if (m > 0) {
    s_factors_.solve_into(scratch_i_, scratch_xi_);
    for (std::size_t ic = 0; ic < m; ++ic) x[iface_[ic]] = scratch_xi_[ic];
  }
  // Back substitution: x_k = A_k^-1 (b_k - E_k x_I) = y_k - (A_k^-1
  // E_k) x_I. A refreshed block already caches A^-1 E row-major, so
  // this is one tiny mat-vec instead of a second triangular solve.
  // SMW-corrected blocks still solve in full: their cache holds the
  // frozen inverse, not the corrected one.
  for (Block& blk : blocks_) {
    const std::size_t nb = blk.unknowns.size();
    if (!blk.smw) {
      const std::size_t cb = blk.e_cols.size();
      scratch_t_.resize(cb);
      for (std::size_t j = 0; j < cb; ++j)
        scratch_t_[j] = scratch_xi_[blk.e_cols[j]];
      for (std::size_t i = 0; i < nb; ++i) {
        const double* row = blk.ainv_e.data() + i * cb;
        double acc = scratch_y_[blk.unknowns[i]];
        for (std::size_t j = 0; j < cb; ++j) acc -= row[j] * scratch_t_[j];
        x[blk.unknowns[i]] = acc;
      }
      continue;
    }
    scratch_b_.resize(nb);
    for (std::size_t i = 0; i < nb; ++i) scratch_b_[i] = b[blk.unknowns[i]];
    for (const ESlot& es : blk.e)
      scratch_b_[es.lr] -= frozen_[es.slot] * scratch_xi_[es.ic];
    block_solve(blk, scratch_b_, scratch_x_);
    for (std::size_t i = 0; i < nb; ++i) x[blk.unknowns[i]] = scratch_x_[i];
  }
}

double SchurSolver::residual(const std::vector<double>& b,
                             const std::vector<double>& x,
                             std::vector<double>& r) const {
  const std::size_t n = pattern_.n;
  r.resize(n);
  double rmax = 0.0;
  for (std::size_t row = 0; row < n; ++row) {
    double acc = b[row];
    for (std::size_t s = pattern_.row_ptr[row];
         s < static_cast<std::size_t>(pattern_.row_ptr[row + 1]); ++s)
      acc -= cur_[s] * x[pattern_.cols[s]];
    r[row] = acc;
    rmax = std::max(rmax, std::abs(acc));
  }
  return rmax;
}

void SchurSolver::solve(const std::vector<double>& b, std::vector<double>& x) {
  if (!factored_)
    throw util::ConvergenceError("schur solve without a valid factorization");
  m_solve(b, x);
  if (!smw_active_) return;
  // SMW algebra is exact but runs through K^-1 products; one guarded
  // refinement pass against the true matrix keeps the solution at
  // direct-solve accuracy (and catches an ill-conditioned update).
  double anorm = 0.0;
  for (std::size_t row = 0; row < pattern_.n; ++row) {
    double rs = 0.0;
    for (std::size_t s = pattern_.row_ptr[row];
         s < static_cast<std::size_t>(pattern_.row_ptr[row + 1]); ++s)
      rs += std::abs(cur_[s]);
    anorm = std::max(anorm, rs);
  }
  const double eps = std::numeric_limits<double>::epsilon();
  double rnorm = residual(b, x, scratch_r_);
  for (int iter = 0; iter < 4; ++iter) {
    const double tol = 4.0 * eps * (anorm * norm_inf(x) + norm_inf(b));
    if (rnorm <= tol) return;
    m_solve(scratch_r_, scratch_d_);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += scratch_d_[i];
    ++stats_.refine_iterations;
    const double next = residual(b, x, scratch_r_);
    if (next >= 0.5 * rnorm) break;  // Stagnation: update too stale.
    rnorm = next;
  }
  const double tol = 4.0 * eps * (anorm * norm_inf(x) + norm_inf(b));
  if (rnorm <= tol) return;
  // Stagnated: drop every live SMW correction, refactor those blocks
  // outright and solve against the now-exact operator.
  ++stats_.full_refreshes;
  for (Block& blk : blocks_)
    if (blk.smw && !refresh_block(blk, cur_))
      throw util::ConvergenceError("schur: singular block on refresh");
  if (!refactor_schur())
    throw util::ConvergenceError("schur: singular interface complement");
  smw_active_ = false;
  m_solve(b, x);
}

}  // namespace dot::numeric
