// Complex dense matrix and LU solver for small-signal (AC) analysis,
// where the MNA system becomes G + j*w*C. The pivoting kernel is the
// shared template in numeric/dense_lu.hpp; only the matrix type lives
// here.
#pragma once

#include <complex>
#include <cstddef>
#include <utility>
#include <vector>

#include "numeric/dense_lu.hpp"

namespace dot::numeric {

using Complex = std::complex<double>;

class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols,
                Complex fill = Complex{0.0, 0.0});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void fill(Complex value);
  std::vector<Complex> multiply(const std::vector<Complex>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Complex dense LU with workspace reuse (see DenseLuT).
using ComplexDenseLu = DenseLuT<ComplexMatrix, Complex>;

/// LU with partial pivoting over the complex field. solve() throws
/// util::ConvergenceError when the matrix is numerically singular.
class ComplexLu {
 public:
  explicit ComplexLu(ComplexMatrix a, double pivot_epsilon = 1e-13)
      : impl_(std::move(a), pivot_epsilon) {}

  bool singular() const { return impl_.singular(); }
  std::vector<Complex> solve(const std::vector<Complex>& b) const {
    return impl_.solve(b);
  }

 private:
  ComplexDenseLu impl_;
};

std::vector<Complex> solve_linear(const ComplexMatrix& a,
                                  const std::vector<Complex>& b);

}  // namespace dot::numeric
