// Structure-exploiting block-arrowhead (Schur complement) solver.
//
// Campaign netlists built from repeated slices (the comparator bank,
// the full chip) produce MNA systems with a bordered block-diagonal
// shape: each slice owns a small cluster of unknowns coupled only to a
// global interface (ladder taps, input trunk, bias/clock spines), never
// directly to another slice. Ordering the unknowns as
//
//     [ A_1          E_1 ] [x_1]   [b_1]
//     [      ...     ... ] [...] = [...]
//     [          A_K E_K ] [x_K]   [b_K]
//     [ F_1  ... F_K  C  ] [x_I]   [b_I]
//
// lets a direct solve run block-by-block: factor each tiny A_k with
// dense LU, form the Schur complement S = C - sum_k F_k A_k^-1 E_k on
// the interface (still sparse -- the ladder chain plus small per-block
// patches), and back-substitute. The win over the flat sparse LU is
// incremental: the solver freezes the values it factored and, on the
// next factor() call, touches only the blocks whose values actually
// moved. A quiescent slice (latched comparator between clock edges)
// re-uses its factor bit-exactly; a slice whose change is confined to a
// few matrix entries (a faulted bridge resistor ramping) is updated by
// an exact Sherman-Morrison-Woodbury low-rank correction; everything
// else is refactored -- at O(block) cost, not O(system).
//
// Every path is exact algebra: the operator solved is always the
// currently assembled matrix (the schur unit tests pin every decision
// path -- reuse, SMW, refresh -- against a dense solve of the same
// matrix at 1e-12), so Newton sees the same operator as the flat
// sparse solver and converges to bit-identical verdicts; per-iterate
// voltages agree to Newton's vtol, the rounding headroom two different
// factorization orders are entitled to. There is no approximate
// "stale preconditioner" mode; see DESIGN.md section 12 for the math
// and the fallback ladder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "numeric/lu.hpp"
#include "numeric/sparse.hpp"

namespace dot::numeric {

/// Assignment of unknowns to diagonal blocks. block_of[i] is the block
/// index of unknown i, or -1 for the shared interface. Produced by
/// spice::make_slice_partition from net naming conventions; consumed by
/// SchurSolver::analyze. A valid partition has no matrix entry coupling
/// two distinct blocks (analyze verifies and rejects otherwise).
struct BlockPartition {
  std::size_t n = 0;                   ///< Unknown count.
  std::vector<std::int32_t> block_of;  ///< Size n; -1 = interface.
  std::size_t block_count = 0;
  /// A partition with fewer than two blocks buys nothing over the flat
  /// sparse path; callers fall back.
  bool trivial() const { return block_count < 2; }
};

/// Wall-time attribution of one factor() call, filled when the caller
/// wants the --phase-times factor split (symbolic analysis vs numeric
/// refactorization vs reuse bookkeeping).
struct SchurPhaseSplit {
  double symbolic_seconds = 0.0;  ///< Schur-complement symbolic analysis.
  double numeric_seconds = 0.0;   ///< Block LU + W + S refactorization.
  double reuse_seconds = 0.0;     ///< Value diff scan + SMW updates.
};

class SchurSolver {
 public:
  struct Stats {
    std::size_t block_refreshes = 0;  ///< Full per-block refactorizations.
    std::size_t block_reuses = 0;     ///< Bit-identical blocks skipped.
    std::size_t lowrank_updates = 0;  ///< SMW low-rank block updates.
    std::size_t schur_refactors = 0;  ///< Interface (S) refactorizations.
    std::size_t refine_iterations = 0;
    std::size_t full_refreshes = 0;  ///< Refinement-stagnation fallbacks.
    /// Blocks merged into the interface after their local LU went
    /// singular (a block whose missing rank lives in its interface
    /// couplings -- e.g. a feedback loop through a shared net -- is
    /// solvable globally but not block-locally).
    std::size_t block_demotions = 0;
  };

  /// Classifies the frozen CSR pattern against the partition and builds
  /// the slot maps (per-block A/E/F regions, interface C region, Schur
  /// pattern). Returns false when the pattern couples two distinct
  /// blocks directly or a block is degenerate -- the caller then stays
  /// on the flat sparse path.
  bool analyze(const CsrPattern& pattern, const BlockPartition& partition);

  bool analyzed() const { return analyzed_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t interface_size() const { return iface_.size(); }
  /// The analyzed matrix structure (callers re-analyze on a change).
  const CsrPattern& pattern() const { return pattern_; }

  /// Adopts the current CSR values (aligned with the analyzed pattern)
  /// as the operator to solve against. Only regions whose values moved
  /// since the previous call are refactored. A block whose local LU
  /// goes singular is demoted to the interface (its rank deficiency is
  /// typically completed by interface couplings the global pivoting
  /// sees but a block-local factor cannot) and the factor retried on
  /// the coarser partition. Returns false only when the interface
  /// itself is singular or demotion leaves fewer than two blocks; the
  /// factorization is then invalid and the caller must fall back to
  /// the flat solver.
  bool factor(const std::vector<double>& values,
              SchurPhaseSplit* split = nullptr);

  bool factored() const { return factored_; }

  void set_pivot_epsilon(double eps) { pivot_epsilon_ = eps; }

  /// Solves A x = b for the exact matrix passed to the last factor().
  /// Throws util::ConvergenceError if no valid factorization is held.
  void solve(const std::vector<double>& b, std::vector<double>& x);

  const Stats& stats() const { return stats_; }

 private:
  struct ASlot {
    std::int32_t r, c;  ///< Block-local row/column.
    std::int32_t slot;  ///< Global CSR value slot.
  };
  struct ESlot {
    std::int32_t lr;   ///< Block-local row.
    std::int32_t ic;   ///< Interface-local column.
    std::int32_t ecp;  ///< Position of `ic` within the block's e_cols.
    std::int32_t slot;
  };
  struct FSlot {
    std::int32_t ir;   ///< Interface-local row.
    std::int32_t frp;  ///< Position of `ir` within the block's f_rows.
    std::int32_t lc;   ///< Block-local column.
    std::int32_t slot;
  };
  struct CSlot {
    std::int32_t s_slot;  ///< Slot in the Schur-complement CSR values.
    std::int32_t slot;    ///< Global CSR value slot.
  };

  struct Block {
    std::vector<std::int32_t> unknowns;  ///< Global ids, local order.
    std::vector<ASlot> a;
    std::vector<ESlot> e;
    std::vector<FSlot> f;
    std::vector<std::int32_t> slots;  ///< All CSR slots (a+e+f regions).
    std::vector<std::int32_t> e_cols, f_rows;  ///< Interface-local ids.
    std::vector<std::int32_t> w_slot;  ///< f_rows x e_cols -> S slot.
    DenseLu lu;                        ///< Factor of the frozen A_k.
    std::vector<double> w;        ///< F A^-1 E patch (f_rows x e_cols).
    std::vector<double> w_delta;  ///< SMW correction to `w` when live.
    std::vector<double> ainv_e;   ///< Cached A^-1 E (nb x e_cols).
    // Sherman-Morrison-Woodbury state for a live low-rank update:
    // A_cur = A_frozen + U V^T with U(:,i) = delta_i e_{row_i},
    // V(:,i) = e_{col_i}; zmat = A_frozen^-1 U, kfac = LU(I + V^T Z).
    bool smw = false;
    std::vector<std::int32_t> smw_rows, smw_cols;
    std::vector<double> zmat;  ///< nb x rank, column-major.
    DenseLu kfac;
  };

  /// One factor attempt on the current partition. Returns kFactorOk,
  /// kFactorAbort (interface singular / size mismatch: unrecoverable),
  /// or the index of the block whose local LU failed.
  int factor_once(const std::vector<double>& values, SchurPhaseSplit* split);
  static constexpr int kFactorOk = -1;
  static constexpr int kFactorAbort = -2;
  /// Merges block k into the interface and re-analyzes (stats survive;
  /// the next factor_once refactors everything against the coarser
  /// partition). False when the remaining partition is trivial.
  bool demote_block(std::size_t k);
  bool refresh_block(Block& blk, const std::vector<double>& values);
  bool try_lowrank(Block& blk, const std::vector<double>& values);
  bool refactor_schur();
  /// Applies the block operator inverse: out = A_k^-1 rhs (with the SMW
  /// correction when active). rhs/out are block-local, must not alias.
  void block_solve(const Block& blk, const std::vector<double>& rhs,
                   std::vector<double>& out);
  void m_solve(const std::vector<double>& b, std::vector<double>& x);
  /// r = b - A x with the true current values; returns ||r||_inf.
  double residual(const std::vector<double>& b, const std::vector<double>& x,
                  std::vector<double>& r) const;

  bool analyzed_ = false;
  bool factored_ = false;
  double pivot_epsilon_ = 1e-13;
  CsrPattern pattern_;   ///< Frozen global pattern (for the residual).
  BlockPartition part_;  ///< Working partition copy (demotions edit it).
  std::vector<std::int32_t> iface_;        ///< Interface global ids.
  std::vector<std::int32_t> local_index_;  ///< Global id -> local index.
  std::vector<std::int32_t> block_of_;     ///< Global id -> block / -1.
  std::vector<Block> blocks_;
  std::vector<CSlot> c_slots_;
  std::vector<std::int32_t> c_region_slots_;  ///< CSR slots of C.

  CsrPattern s_pattern_;
  std::vector<double> s_values_;
  std::shared_ptr<const SparseSymbolic> s_symbolic_;
  SparseFactors s_factors_;

  std::vector<double> frozen_;  ///< Adopted CSR values (A/E/F/C regions).
  std::vector<double> cur_;     ///< True current values (for residuals).
  bool have_frozen_ = false;
  bool smw_active_ = false;  ///< Any block currently under SMW.

  // Solve scratch, sized at analyze; no allocation on the hot path.
  std::vector<double> scratch_b_, scratch_x_, scratch_y_, scratch_i_,
      scratch_xi_, scratch_r_, scratch_d_, scratch_t_, scratch_s_,
      scratch_multi_;

  Stats stats_;
};

}  // namespace dot::numeric
