// Dense LU factorization with partial pivoting, templated over the
// scalar field so the real (DC/transient) and complex (AC) solvers
// share one pivoting implementation.
//
// The factorization is done IN PLACE in a matrix owned by this object:
// callers that solve the same-sized system repeatedly (the Newton loop)
// assemble straight into `matrix()` and call `factor()`, so the per-
// iteration matrix copy and allocation churn of the old one-shot
// LuFactorization constructor disappears.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dot::numeric {

template <typename MatrixT, typename Scalar>
class DenseLuT {
 public:
  DenseLuT() = default;

  /// One-shot compatibility path: takes the matrix and factors it.
  explicit DenseLuT(MatrixT a, double pivot_epsilon = 1e-13)
      : lu_(std::move(a)) {
    factor(pivot_epsilon);
  }

  /// Assembly target for workspace reuse: fill this matrix (its storage
  /// persists between factorizations), then call factor().
  MatrixT& matrix() { return lu_; }
  const MatrixT& matrix() const { return lu_; }

  std::size_t size() const { return lu_.rows(); }
  bool singular() const { return singular_; }

  /// Estimated reciprocal pivot growth; tiny values signal an
  /// ill-conditioned system (useful for fault-sim diagnostics).
  double min_abs_pivot() const { return min_abs_pivot_; }

  /// Factors matrix() in place (P*A = L*U). Returns false (and marks
  /// the factorization singular) when a zero / sub-epsilon pivot is hit.
  bool factor(double pivot_epsilon = 1e-13) {
    if (lu_.rows() != lu_.cols())
      throw std::invalid_argument("DenseLu: matrix must be square");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    singular_ = false;
    min_abs_pivot_ = n == 0 ? 0.0 : std::numeric_limits<double>::infinity();

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivoting: largest-magnitude entry in column k.
      std::size_t pivot_row = k;
      double pivot_mag = std::abs(lu_(k, k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const double mag = std::abs(lu_(r, k));
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot_row = r;
        }
      }
      if (pivot_mag <= pivot_epsilon) {
        singular_ = true;
        min_abs_pivot_ = 0.0;
        return false;
      }
      if (pivot_row != k) {
        for (std::size_t c = 0; c < n; ++c)
          std::swap(lu_(k, c), lu_(pivot_row, c));
        std::swap(perm_[k], perm_[pivot_row]);
      }
      min_abs_pivot_ = std::min(min_abs_pivot_, pivot_mag);
      const Scalar inv_pivot = Scalar(1.0) / lu_(k, k);
      for (std::size_t r = k + 1; r < n; ++r) {
        const Scalar factor = lu_(r, k) * inv_pivot;
        lu_(r, k) = factor;
        if (factor == Scalar(0.0)) continue;
        for (std::size_t c = k + 1; c < n; ++c)
          lu_(r, c) -= factor * lu_(k, c);
      }
    }
    return true;
  }

  /// Solves A x = b into `x` (resized as needed; reuse the same vector
  /// across calls to avoid allocation). Throws on singular systems.
  void solve_into(const std::vector<Scalar>& b, std::vector<Scalar>& x) const {
    if (singular_)
      throw util::ConvergenceError("LU solve on singular matrix");
    const std::size_t n = lu_.rows();
    if (b.size() != n)
      throw std::invalid_argument("DenseLu::solve: size mismatch");
    x.resize(n);
    // Forward substitution on permuted b (L has implicit unit diagonal).
    for (std::size_t r = 0; r < n; ++r) {
      Scalar acc = b[perm_[r]];
      for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
      x[r] = acc;
    }
    // Back substitution.
    for (std::size_t ri = n; ri-- > 0;) {
      Scalar acc = x[ri];
      for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
      x[ri] = acc / lu_(ri, ri);
    }
  }

  std::vector<Scalar> solve(const std::vector<Scalar>& b) const {
    std::vector<Scalar> x;
    solve_into(b, x);
    return x;
  }

  /// Solves A X = B for a row-major n x k right-hand block in place:
  /// xb[r*k + j] holds B(r, j) on entry and X(r, j) on return.
  /// `scratch` is resized to n*k; callers reuse one buffer across calls
  /// to avoid allocation. The substitutions sweep all k columns per
  /// pivot row, so the inner loops stream contiguous memory instead of
  /// re-walking L and U once per column.
  void solve_multi_into(std::vector<Scalar>& xb, std::size_t k,
                        std::vector<Scalar>& scratch) const {
    if (singular_)
      throw util::ConvergenceError("LU solve on singular matrix");
    const std::size_t n = lu_.rows();
    if (xb.size() != n * k)
      throw std::invalid_argument("DenseLu::solve_multi: size mismatch");
    scratch.resize(n * k);
    for (std::size_t r = 0; r < n; ++r) {
      const Scalar* src = xb.data() + perm_[r] * k;
      Scalar* dst = scratch.data() + r * k;
      for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
    }
    // Forward substitution (L has implicit unit diagonal).
    for (std::size_t r = 0; r < n; ++r) {
      Scalar* xr = scratch.data() + r * k;
      for (std::size_t c = 0; c < r; ++c) {
        const Scalar l = lu_(r, c);
        if (l == Scalar(0.0)) continue;
        const Scalar* xc = scratch.data() + c * k;
        for (std::size_t j = 0; j < k; ++j) xr[j] -= l * xc[j];
      }
    }
    // Back substitution.
    for (std::size_t ri = n; ri-- > 0;) {
      Scalar* xr = scratch.data() + ri * k;
      for (std::size_t c = ri + 1; c < n; ++c) {
        const Scalar u = lu_(ri, c);
        if (u == Scalar(0.0)) continue;
        const Scalar* xc = scratch.data() + c * k;
        for (std::size_t j = 0; j < k; ++j) xr[j] -= u * xc[j];
      }
      const Scalar inv = Scalar(1.0) / lu_(ri, ri);
      for (std::size_t j = 0; j < k; ++j) xr[j] *= inv;
    }
    xb.swap(scratch);
  }

 private:
  MatrixT lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
  double min_abs_pivot_ = 0.0;
};

}  // namespace dot::numeric
