#include "numeric/complex_lu.hpp"

#include <algorithm>
#include <stdexcept>

namespace dot::numeric {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void ComplexMatrix::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::vector<Complex> ComplexMatrix::multiply(
    const std::vector<Complex>& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("ComplexMatrix::multiply: size mismatch");
  std::vector<Complex> y(rows_, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<Complex> solve_linear(const ComplexMatrix& a,
                                  const std::vector<Complex>& b) {
  return ComplexLu(a).solve(b);
}

}  // namespace dot::numeric
