#include "numeric/complex_lu.hpp"

#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

namespace dot::numeric {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void ComplexMatrix::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::vector<Complex> ComplexMatrix::multiply(
    const std::vector<Complex>& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("ComplexMatrix::multiply: size mismatch");
  std::vector<Complex> y(rows_, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

ComplexLu::ComplexLu(ComplexMatrix a, double pivot_epsilon)
    : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("ComplexLu: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= pivot_epsilon) {
      singular_ = true;
      return;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const Complex inv_pivot = Complex{1.0, 0.0} / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == Complex{0.0, 0.0}) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<Complex> ComplexLu::solve(const std::vector<Complex>& b) const {
  if (singular_)
    throw util::ConvergenceError("complex LU solve on singular matrix");
  const std::size_t n = lu_.rows();
  if (b.size() != n)
    throw std::invalid_argument("ComplexLu::solve: size mismatch");
  std::vector<Complex> x(n);
  for (std::size_t r = 0; r < n; ++r) {
    Complex acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    Complex acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

std::vector<Complex> solve_linear(const ComplexMatrix& a,
                                  const std::vector<Complex>& b) {
  return ComplexLu(a).solve(b);
}

}  // namespace dot::numeric
